// Audited dynamic content — the future-work direction of paper §6.
//
// Static elements are signed by the owner, but dynamic data cannot be: "it
// would require the object owner to sign the results for every possible
// client query, which is clearly not feasible."  The paper points at the
// Gemini approach [12]: make the *untrusted server* sign what it serves,
// so a cache serving bogus content "is eventually caught red-handed",
// combined with probabilistic double-checking against the origin.
//
// This module implements exactly that:
//   * A DynamicReplicaServer evaluates deterministic generators for an
//     object's dynamic templates and signs every response with its own
//     server key -> a non-repudiable RECEIPT.
//   * A DynamicAuditor (client side) verifies receipts and, with
//     configurable probability, replays the query against the trusted
//     origin.  A mismatch yields a self-contained MisbehaviorProof that
//     anyone holding the server's public key can verify offline.
// A cheating replica is thus detected with probability ~p per lie and can
// be publicly expelled; an honest replica is never incriminated.
#pragma once

#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "crypto/rsa.hpp"
#include "globedoc/oid.hpp"
#include "net/transport.hpp"
#include "rpc/rpc.hpp"
#include "util/mutex.hpp"
#include "util/rng.hpp"
#include "util/taint_annotations.hpp"

namespace globe::globedoc {

/// Deterministic content generator: query string -> response bytes.
/// Determinism is what makes after-the-fact auditing sound; generators
/// needing changing inputs should fold them into the query.
using Generator = std::function<util::Bytes(const std::string& query)>;

/// RPC method ids under rpc::kGlobeDocDynamic.
enum DynamicMethod : std::uint16_t {
  kDynQuery = 1,  // {oid20, str template, str query} -> {bytes resp, bytes receipt}
};

/// A signed statement by a replica server: "at time T, for query Q on
/// template P of object O, I served content hashing to H."
struct DynamicReceipt {
  Oid oid;
  std::string template_name;
  std::string query;
  util::Bytes response_sha1;  // SHA-1 of the served response
  util::SimTime served_at = 0;
  std::string server_name;    // which replica signed
  util::Bytes signature;      // RSA/SHA-256 by the replica's server key

  util::Bytes signed_body() const;
  util::Bytes serialize() const;
  static util::Result<DynamicReceipt> parse(util::BytesView data);

  /// Signature + response binding check.
  GLOBE_SANITIZER [[nodiscard]] bool verify(const crypto::RsaPublicKey& server_key,
                                            util::BytesView response) const;
};

/// Hosts dynamic templates and signs everything it serves.
class DynamicReplicaServer {
 public:
  DynamicReplicaServer(std::string name, crypto::RsaKeyPair server_key);

  const crypto::RsaPublicKey& server_key() const { return key_.pub; }
  const std::string& name() const { return name_; }

  /// Installs a generator for (oid, template).
  void host(const Oid& oid, const std::string& template_name, Generator generator)
      GLOBE_EXCLUDES(mutex_);

  void register_with(rpc::ServiceDispatcher& dispatcher);

  /// Test hook: corrupts every served response *after* receipt signing is
  /// decided — i.e. the server lies and signs the lie (the case auditing
  /// must catch).
  void set_cheat(std::function<util::Bytes(util::Bytes)> corruptor)
      GLOBE_EXCLUDES(mutex_);

  std::size_t queries_served() const GLOBE_EXCLUDES(mutex_);

 private:
  util::Result<util::Bytes> handle_query(net::ServerContext& ctx,
                                         GLOBE_UNTRUSTED util::BytesView payload);

  std::string name_;
  crypto::RsaKeyPair key_;
  mutable util::Mutex mutex_;
  std::map<std::pair<Oid, std::string>, Generator> generators_
      GLOBE_GUARDED_BY(mutex_);
  std::function<util::Bytes(util::Bytes)> cheat_ GLOBE_GUARDED_BY(mutex_);
  std::size_t queries_served_ GLOBE_GUARDED_BY(mutex_) = 0;
};

/// A verifiable accusation: the receipt (server-signed) plus what the
/// trusted origin actually returns for the same query.
struct MisbehaviorProof {
  DynamicReceipt receipt;
  util::Bytes origin_response;

  /// Valid iff the receipt signature verifies under `server_key` AND the
  /// origin response hashes differently from what the server attested.
  GLOBE_SANITIZER [[nodiscard]] bool verify(const crypto::RsaPublicKey& server_key) const;
};

/// Client-side: queries a replica, verifies receipts, and probabilistically
/// double-checks against the origin (the owner's trusted server).
class DynamicAuditor {
 public:
  struct Config {
    net::Endpoint replica;
    net::Endpoint origin;                 // trusted (owner-run) endpoint
    crypto::RsaPublicKey replica_server_key;
    double audit_probability = 0.1;
    std::uint64_t seed = 1;
  };

  DynamicAuditor(net::Transport& transport, Config config);

  /// Fetches dynamic content from the replica.  The response is returned
  /// even when an audit later proves it bogus — detection is after the
  /// fact, exactly as in the Gemini model.  BAD_SIGNATURE when the receipt
  /// itself doesn't verify (rejected immediately).
  util::Result<util::Bytes> query(const Oid& oid, const std::string& template_name,
                                  const std::string& query);

  const std::vector<MisbehaviorProof>& proofs() const { return proofs_; }
  std::size_t audits_performed() const { return audits_; }
  std::size_t queries_performed() const { return queries_; }

 private:
  static util::Result<std::pair<util::Bytes, DynamicReceipt>> parse_reply(
      util::BytesView raw);

  net::Transport* transport_;
  Config config_;
  util::SplitMix64 rng_;
  std::vector<MisbehaviorProof> proofs_;
  std::size_t audits_ = 0;
  std::size_t queries_ = 0;
};

}  // namespace globe::globedoc
