#include "globedoc/oid.hpp"

#include <algorithm>

#include "crypto/sha1.hpp"

namespace globe::globedoc {

using util::ErrorCode;
using util::Result;

Oid Oid::from_public_key(const crypto::RsaPublicKey& key) {
  auto digest = crypto::Sha1::digest(key.serialize());
  Oid oid;
  std::copy(digest.begin(), digest.end(), oid.bytes_.begin());
  return oid;
}

Result<Oid> Oid::from_bytes(util::BytesView data) {
  if (data.size() != kSize) {
    return Result<Oid>(ErrorCode::kInvalidArgument, "OID must be 20 bytes");
  }
  Oid oid;
  std::copy(data.begin(), data.end(), oid.bytes_.begin());
  return oid;
}

Result<Oid> Oid::from_hex(std::string_view hex) {
  try {
    return from_bytes(util::hex_decode(hex));
  } catch (const std::invalid_argument& e) {
    return Result<Oid>(ErrorCode::kInvalidArgument, e.what());
  }
}

std::string Oid::to_hex() const {
  return util::hex_encode(util::BytesView(bytes_.data(), bytes_.size()));
}

bool Oid::matches_key(const crypto::RsaPublicKey& key) const {
  return *this == from_public_key(key);
}

}  // namespace globe::globedoc
