// Self-certifying object identifiers (paper §3.1.2).
//
// OID = SHA-1(object public key).  Because SHA-1 is collision resistant, an
// OID obtained this way is securely bound to the key: anyone holding the
// OID can verify a claimed public key offline, with no trusted third party.
#pragma once

#include <array>
#include <compare>
#include <cstdint>
#include <string>

#include "crypto/rsa.hpp"
#include "util/bytes.hpp"
#include "util/status.hpp"
#include "util/taint_annotations.hpp"

namespace globe::globedoc {

class Oid {
 public:
  static constexpr std::size_t kSize = 20;

  Oid() = default;

  /// Derives the self-certifying OID from an object's public key.
  static Oid from_public_key(const crypto::RsaPublicKey& key);

  /// Parses exactly 20 bytes.
  static util::Result<Oid> from_bytes(util::BytesView data);
  static util::Result<Oid> from_hex(std::string_view hex);

  util::Bytes to_bytes() const { return util::Bytes(bytes_.begin(), bytes_.end()); }
  util::BytesView view() const { return util::BytesView(bytes_.data(), bytes_.size()); }
  std::string to_hex() const;

  /// The self-certifying check: does `key` hash to this OID?  A key that
  /// passes is authenticated with no third party (paper §3.1.2).
  GLOBE_SANITIZER [[nodiscard]] bool matches_key(const crypto::RsaPublicKey& key) const;

  auto operator<=>(const Oid&) const = default;

 private:
  std::array<std::uint8_t, kSize> bytes_{};
};

}  // namespace globe::globedoc
