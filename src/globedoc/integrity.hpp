// Integrity certificates (paper §3.2.2, Figure 2).
//
// A digital certificate signed with the object's private key holding one
// entry per page element: the element's name, its SHA-1 hash, and a
// validity interval.  Clients fetching elements from *untrusted* replicas
// use it to enforce:
//   * authenticity — signature verifies under the object key AND the
//     element's hash matches its entry;
//   * freshness    — the retrieval time falls inside the validity interval;
//   * consistency  — the entry checked is the one for the element the
//     client actually asked for.
// Each failure maps to a distinct ErrorCode so callers (and tests) can tell
// the attacks apart.
#pragma once

#include <string>
#include <vector>

#include "crypto/rsa.hpp"
#include "globedoc/element.hpp"
#include "globedoc/oid.hpp"
#include "util/clock.hpp"
#include "util/taint_annotations.hpp"

namespace globe::globedoc {

/// Protocol ceiling on page elements per object (and so on entries per
/// integrity certificate).  parse() rejects certificates claiming more as a
/// protocol error before allocating anything for them.
inline constexpr std::size_t kMaxCertificateEntries = 1024;

struct ElementEntry {
  std::string name;
  util::Bytes sha1;            // 20-byte digest of the serialized element
  util::SimTime expires = 0;   // end of the validity interval
};

class IntegrityCertificate {
 public:
  IntegrityCertificate() = default;

  /// Builds and signs a certificate over `elements`, each valid until
  /// now + ttl (per-element freshness constraints are supported by editing
  /// entries() before signing via Builder below — see ObjectOwner).
  static IntegrityCertificate build(const Oid& oid, std::uint64_t version,
                                    const std::vector<PageElement>& elements,
                                    util::SimTime now, util::SimDuration ttl,
                                    const crypto::RsaPrivateKey& key);

  const Oid& oid() const { return oid_; }
  std::uint64_t version() const { return version_; }
  const std::vector<ElementEntry>& entries() const { return entries_; }
  const util::Bytes& signature() const { return signature_; }

  [[nodiscard]] const ElementEntry* find(const std::string& name) const;

  /// Verifies the signature under the object's public key.  Sanitizes the
  /// certificate itself: a certificate that passed is trusted content.
  GLOBE_SANITIZER [[nodiscard]] bool verify_signature(
      const crypto::RsaPublicKey& key) const;

  /// The three checks of §3.2.2 for one retrieved element:
  ///   NOT_FOUND     — no entry for `requested_name`;
  ///   WRONG_ELEMENT — the served element is not the one requested;
  ///   HASH_MISMATCH — body differs from the signed digest;
  ///   EXPIRED       — entry validity interval passed.
  /// Signature verification is separate (verify_signature) because it is
  /// done once per binding, not once per element.
  GLOBE_SANITIZER [[nodiscard]] util::Status check_element(
      const std::string& requested_name, const PageElement& served,
      util::SimTime now) const;

  /// Wire encoding: signed body + signature.
  util::Bytes serialize() const;
  static util::Result<IntegrityCertificate> parse(util::BytesView data);

  /// Serialized size in bytes (the "about 2KB of extra information" the
  /// paper measures in the small-transfer overhead).
  std::size_t wire_size() const { return body_.size() + signature_.size() + 8; }

 private:
  util::Bytes body_;  // canonical signed bytes
  util::Bytes signature_;
  // Decoded view of body_:
  Oid oid_;
  std::uint64_t version_ = 0;
  std::vector<ElementEntry> entries_;
};

}  // namespace globe::globedoc
