// CA-mediated identity certificates (paper §3.1.2).
//
// Self-certifying OIDs bind an object to its key; identity certificates
// bind the OID to a real-world entity ("Vrije Universiteit Amsterdam").
// Users configure the CAs they trust in a TrustStore; the proxy fetches the
// object's identity certificates and displays the naming information of the
// first one issued by a trusted CA ("Certified as:" in Figure 3).
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "crypto/rsa.hpp"
#include "globedoc/oid.hpp"
#include "util/clock.hpp"
#include "util/taint_annotations.hpp"

namespace globe::globedoc {

struct IdentityCertificate {
  std::string subject;   // real-world entity behind the object
  Oid oid;               // object this identity is claimed for
  std::string issuer;    // CA name
  util::SimTime expires = 0;
  util::Bytes signature;  // CA RSA/SHA-256 signature over the body

  util::Bytes signed_body() const;
  util::Bytes serialize() const;
  static util::Result<IdentityCertificate> parse(util::BytesView data);
};

/// A certificate authority: issues identity certificates for OIDs.
class CertificateAuthority {
 public:
  CertificateAuthority(std::string name, crypto::RsaKeyPair keys);

  const std::string& name() const { return name_; }
  const crypto::RsaPublicKey& public_key() const { return keys_.pub; }

  IdentityCertificate issue(const std::string& subject, const Oid& oid,
                            util::SimTime expires) const;

 private:
  std::string name_;
  crypto::RsaKeyPair keys_;
};

/// The user's list of trusted CA keys (paper: "users themselves can specify
/// a number of CAs they trust, and store their public keys with their user
/// proxy").
class TrustStore {
 public:
  void trust(const std::string& ca_name, crypto::RsaPublicKey key);
  [[nodiscard]] bool trusts(const std::string& ca_name) const;
  std::size_t size() const { return cas_.size(); }

  /// Full verification of one certificate: trusted issuer, valid signature,
  /// not expired, and issued for `expected_oid`.
  GLOBE_SANITIZER [[nodiscard]] util::Status verify(const IdentityCertificate& cert,
                                                    const Oid& expected_oid,
                                                    util::SimTime now) const;

  /// Scans `certs` and returns the subject of the first certificate that
  /// verifies (the proxy's "Certified as:" string), or nullopt.  The
  /// returned subject is sanitized — it was lifted from a certificate that
  /// passed full verification.
  GLOBE_SANITIZER [[nodiscard]] std::optional<std::string> first_trusted_subject(
      const std::vector<IdentityCertificate>& certs, const Oid& expected_oid,
      util::SimTime now) const;

 private:
  std::map<std::string, crypto::RsaPublicKey> cas_;
};

}  // namespace globe::globedoc
