#include "globedoc/proxy.hpp"

#include "crypto/sha1.hpp"
#include "globedoc/server.hpp"
#include "obs/admin.hpp"
#include "obs/log.hpp"
#include "rpc/rpc.hpp"
#include "util/log.hpp"
#include "util/serial.hpp"

namespace globe::globedoc {

using util::Bytes;
using util::BytesView;
using util::ErrorCode;
using util::Result;
using util::Status;

namespace {

// Failure pages embed error text that can carry attacker-chosen fragments
// (element names from the requested URL, addresses and messages relayed from
// replicas).  Escape it so a hostile replica cannot turn the paper's
// "Security Check Failed" document into script injection at the client.
std::string html_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '"': out += "&quot;"; break;
      case '\'': out += "&#39;"; break;
      default: out += c; break;
    }
  }
  return out;
}

}  // namespace

namespace {

/// proxy.fetch_ms bucket bounds (milliseconds).  The SLO latency evaluator
/// counts whole buckets, so latency objectives should sit on one of these.
/// Sub-millisecond bounds resolve cache-hit latencies, which cost memcopy
/// time only — without them every hit percentile collapses to 0.
const std::vector<double>& fetch_ms_bounds() {
  static const std::vector<double> bounds = {0.05, 0.1, 0.2, 0.5,  1,
                                             2,    5,   10,  20,   50,
                                             100,  200, 500, 1000, 2000, 5000};
  return bounds;
}

}  // namespace

GlobeDocProxy::GlobeDocProxy(net::Transport& transport, ProxyConfig config)
    : transport_(&transport),
      config_(std::move(config)),
      registry_(config_.registry != nullptr ? config_.registry
                                            : &obs::global_registry()),
      resolver_(transport, config_.naming_root, config_.naming_anchor,
                registry_),
      locator_(transport, config_.location_site, registry_) {
  fetches_ok_ = &registry_->counter("proxy.fetches", {{"outcome", "ok"}});
  fetches_failed_ = &registry_->counter("proxy.fetches", {{"outcome", "error"}});
  binding_cache_hits_ = &registry_->counter("proxy.cache.binding_hits");
  element_cache_hits_ = &registry_->counter("proxy.cache.element_hits");
  replicas_tried_ = &registry_->counter("proxy.replicas_tried");
  cert_verifies_ = &registry_->counter("proxy.cert_verifies");
  cert_verify_memo_hits_ = &registry_->counter("proxy.cert_verify_memo_hits");
}

Result<FetchResult> GlobeDocProxy::fetch_url(const std::string& hybrid_url) {
  auto parsed = parse_hybrid_url(hybrid_url);
  if (!parsed.is_ok()) return parsed.status();
  return fetch(parsed->object_name, parsed->element_name);
}

Result<GlobeDocProxy::Binding> GlobeDocProxy::bind_replica(const Oid& oid,
                                                           const net::Endpoint& address,
                                                           obs::Tracer& tracer) {
  GLOBE_PROFILE_SCOPE("bind");
  rpc::RpcClient replica(*transport_, address);

  // --- Step 3: public key, self-certifying check (security time).
  auto key_span = tracer.span(FetchStage::kKeyCheck);
  util::Writer oid_req;
  oid_req.raw(oid.to_bytes());
  auto key_raw = replica.call(rpc::kGlobeDocSecurity, kGetPublicKey, oid_req.buffer());
  if (!key_raw.is_ok()) return key_raw.status();
  auto object_key = crypto::RsaPublicKey::parse(*key_raw);
  if (!object_key.is_ok()) return object_key.status();
  transport_->charge(net::CpuOp::kSha1, key_raw->size());
  if (!oid.matches_key(*object_key)) {
    return Result<Binding>(ErrorCode::kOidMismatch,
                           "public key does not hash to the OID at " +
                               address.to_string());
  }
  key_span.end();

  Binding binding;
  binding.oid = oid;
  binding.replica = address;
  binding.object_key = std::move(*object_key);

  // --- Step 4: identity certificates against the user's trusted CAs.
  if (config_.request_identity) {
    GLOBE_PROFILE_SCOPE("identity");
    auto identity_span = tracer.span(FetchStage::kIdentity);
    auto certs_raw =
        replica.call(rpc::kGlobeDocSecurity, kGetIdentityCerts, oid_req.buffer());
    if (certs_raw.is_ok()) {
      std::vector<IdentityCertificate> certs;
      try {
        util::Reader r(*certs_raw);
        std::uint32_t n = r.u32();
        for (std::uint32_t i = 0; i < n; ++i) {
          auto cert = IdentityCertificate::parse(r.bytes());
          if (cert.is_ok()) certs.push_back(std::move(*cert));
        }
      } catch (const util::SerialError&) {
        // Malformed list: treat as no usable certificates.
        certs.clear();
      }
      // One public-key verification per certificate examined.
      transport_->charge(net::CpuOp::kRsaVerify, certs.size());
      binding.certified_as =
          config_.trust.first_trusted_subject(certs, oid, transport_->now());
    }
    if (config_.require_identity && !binding.certified_as.has_value()) {
      return Result<Binding>(ErrorCode::kUntrustedIssuer,
                             "no identity certificate from a trusted CA");
    }
  }

  // --- Step 5: integrity certificate, signature check.
  auto integrity_span = tracer.span(FetchStage::kIntegrityVerify);
  auto cert_raw =
      replica.call(rpc::kGlobeDocSecurity, kGetIntegrityCert, oid_req.buffer());
  if (!cert_raw.is_ok()) return cert_raw.status();
  auto certificate = IntegrityCertificate::parse(*cert_raw);
  if (!certificate.is_ok()) return certificate.status();
  // One RSA verify per (document key, certificate): a document fetch touches
  // many elements, each re-binding when bindings aren't cached, but the
  // certificate bytes rarely change between those binds.  The memo replays
  // verifications of byte-identical (key, certificate) inputs only, so the
  // hit path is exactly as strong as re-verifying.
  std::pair<Bytes, Bytes> memo_key{binding.object_key.serialize(), *cert_raw};
  {
    // The probe covers hit and miss alike, so /profilez shows cert_verify
    // at ~zero ns/call when the memo is absorbing re-binds.
    GLOBE_PROFILE_SCOPE("cert_verify");
    if (cert_verify_memo_.contains(memo_key)) {
      cert_verify_memo_hits_->inc();
    } else {
      transport_->charge(net::CpuOp::kRsaVerify, 1);
      cert_verifies_->inc();
      if (!certificate->verify_signature(binding.object_key)) {
        return Result<Binding>(ErrorCode::kBadSignature,
                               "integrity certificate signature invalid");
      }
      constexpr std::size_t kCertMemoCapacity = 64;
      if (cert_verify_memo_order_.size() >= kCertMemoCapacity) {
        cert_verify_memo_.erase(cert_verify_memo_order_.front());
        cert_verify_memo_order_.pop_front();
      }
      cert_verify_memo_.insert(memo_key);
      cert_verify_memo_order_.push_back(std::move(memo_key));
    }
  }
  if (certificate->oid() != oid) {
    return Result<Binding>(ErrorCode::kWrongElement,
                           "integrity certificate for a different object");
  }
  binding.certificate = std::move(*certificate);
  return binding;
}

Result<PageElement> GlobeDocProxy::fetch_element(const Binding& binding,
                                                 const std::string& element_name,
                                                 FetchMetrics& metrics,
                                                 obs::Tracer& tracer) {
  // Edge-cache tier (step 6 via the shared verified cache): hits are served
  // locally, misses coalesce into one batched fill.  The tier performs the
  // §3.2.2 element checks itself under `binding.certificate`, so its results
  // carry the same guarantees as the direct path below; verification time
  // lands in the edge_cache span instead of element_verify.
  if (config_.edge_cache != nullptr) {
    auto edge_span = tracer.span(FetchStage::kEdgeCache);
    auto fetched = config_.edge_cache->fetch_through(
        *transport_, binding.replica, binding.oid, binding.certificate,
        element_name);
    edge_span.end();
    if (!fetched.is_ok()) return fetched.status();
    metrics.served_from_edge_cache = fetched->cache_hit;
    metrics.coalesced_fill = fetched->coalesced;
    metrics.content_bytes += fetched->element.content.size();
    return std::move(fetched->element);
  }

  rpc::RpcClient replica(*transport_, binding.replica);
  util::Writer req;
  req.raw(binding.oid.to_bytes());
  req.str(element_name);
  auto raw = replica.call(rpc::kGlobeDocAccess, kGetElement, req.buffer());
  if (!raw.is_ok()) return raw.status();

  auto element = PageElement::parse(*raw);
  if (!element.is_ok()) return element.status();

  // --- Step 6: authenticity, consistency, freshness (security time).
  auto verify_span = tracer.span(FetchStage::kElementVerify);
  Status check = Status::ok();
  {
    GLOBE_PROFILE_SCOPE("element_verify");
    transport_->charge(net::CpuOp::kSha1, raw->size());
    check = binding.certificate.check_element(element_name, *element,
                                              transport_->now());
  }
  verify_span.end();
  if (!check.is_ok()) return check;

  metrics.content_bytes += element->content.size();
  return element;
}

void GlobeDocProxy::cache_element(const std::string& object_name,
                                  const std::string& element_name,
                                  const Binding& binding,
                                  const PageElement& element) {
  if (!config_.cache_elements) return;
  const ElementEntry* entry = binding.certificate.find(element_name);
  if (entry == nullptr) return;
  element_cache_[{object_name, element_name}] =
      CachedElement{element, entry->expires, binding.certified_as};
}

Result<FetchResult> GlobeDocProxy::fetch(const std::string& object_name,
                                         const std::string& element_name) {
  // Everything below — resolver walk, binding crypto, element verification —
  // is attributed to this proxy's profile registry (DESIGN.md §15).
  obs::ProfileRegistryScope profile_scope(config_.profile);
  GLOBE_PROFILE_SCOPE("proxy.fetch");
  FetchMetrics metrics;
  obs::Tracer tracer([this] { return transport_->now(); });
  tracer.set_host("proxy");
  tracer.set_sink(config_.trace_collector != nullptr
                      ? config_.trace_collector
                      : &obs::global_trace_collector());
  auto result = fetch_inner(object_name, element_name, metrics, tracer);

  // The root span closed when fetch_inner returned; derive the Fig. 4
  // numerator from the per-stage spans (across every replica attempted).
  auto finished = tracer.take_finished();
  if (result.is_ok() && !finished.empty()) {
    obs::SpanRecord& trace = finished.front();
    result->metrics.security_time =
        obs::span_total(trace, FetchStage::kKeyCheck) +
        obs::span_total(trace, FetchStage::kIdentity) +
        obs::span_total(trace, FetchStage::kIntegrityVerify) +
        obs::span_total(trace, FetchStage::kElementVerify);
    result->metrics.trace = std::move(trace);
    result->metrics.trace_hi = tracer.trace_hi();
    result->metrics.trace_lo = tracer.trace_lo();
  }
  (result.is_ok() ? fetches_ok_ : fetches_failed_)->inc();
  return result;
}

Result<FetchResult> GlobeDocProxy::fetch_inner(const std::string& object_name,
                                               const std::string& element_name,
                                               FetchMetrics& metrics,
                                               obs::Tracer& tracer) {
  auto fetch_span = tracer.span(FetchStage::kFetch);
  util::SimTime start = transport_->now();

  // Verified element cache: sound to serve locally until the certificate
  // entry's validity interval ends (freshness is exactly what the interval
  // certifies).
  if (config_.cache_elements) {
    auto it = element_cache_.find({object_name, element_name});
    if (it != element_cache_.end()) {
      if (transport_->now() < it->second.expires) {
        metrics.used_cached_element = true;
        metrics.content_bytes = it->second.element.content.size();
        element_cache_hits_->inc();
        return FetchResult{it->second.element, it->second.certified_as, metrics};
      }
      obs::global_event_log().emit(
          obs::EventLevel::kDebug, "proxy", "element_cache_evict",
          object_name + "/" + element_name + " expired", transport_->now());
      element_cache_.erase(it);
    }
  }

  // Cached binding fast path (re-binds on any failure below).
  if (config_.cache_bindings) {
    auto it = bindings_.find(object_name);
    if (it != bindings_.end()) {
      metrics.used_cached_binding = true;
      metrics.replicas_tried = 1;
      auto element = fetch_element(it->second, element_name, metrics, tracer);
      if (element.is_ok()) {
        metrics.total_time = transport_->now() - start;
        registry_
            ->histogram("proxy.fetch_ms", fetch_ms_bounds(),
                        {{"replica", it->second.replica.to_string()}})
            .observe(util::to_millis(metrics.total_time));
        binding_cache_hits_->inc();
        cache_element(object_name, element_name, it->second, *element);
        return FetchResult{std::move(*element), it->second.certified_as, metrics};
      }
      bindings_.erase(it);
      metrics.used_cached_binding = false;
    }
  }

  // --- Step 1: secure name resolution.
  auto resolve_span = tracer.span(FetchStage::kResolve);
  auto oid_bytes = resolver_.resolve(object_name);
  if (!oid_bytes.is_ok()) return oid_bytes.status();
  auto oid = Oid::from_bytes(*oid_bytes);
  if (!oid.is_ok()) return oid.status();
  resolve_span.end();

  // --- Step 2: replica location (untrusted).
  auto locate_span = tracer.span(FetchStage::kLocate);
  auto addresses = locator_.lookup(*oid_bytes);
  if (!addresses.is_ok()) return addresses.status();
  if (addresses->empty()) {
    return Result<FetchResult>(ErrorCode::kNotFound, "no replicas registered");
  }
  locate_span.end();

  // --- Steps 3-6 with fallback across contact addresses.
  Status last_error(ErrorCode::kUnavailable, "no address tried");
  for (const auto& address : *addresses) {
    ++metrics.replicas_tried;
    replicas_tried_->inc();
    auto binding = bind_replica(*oid, address, tracer);
    if (!binding.is_ok()) {
      last_error = binding.status();
      obs::global_event_log().emit(
          obs::EventLevel::kWarn, "proxy", "binding_failed",
          address.to_string() + ": " + last_error.to_string(),
          transport_->now());
      continue;
    }
    auto element = fetch_element(*binding, element_name, metrics, tracer);
    if (!element.is_ok()) {
      last_error = element.status();
      obs::global_event_log().emit(
          obs::EventLevel::kWarn, "proxy", "element_rejected",
          address.to_string() + ": " + last_error.to_string(),
          transport_->now());
      continue;
    }
    if (config_.cache_bindings) {
      bindings_[object_name] = *binding;
    }
    last_replica_.store((std::uint64_t{1} << 63) |
                            (std::uint64_t{address.host.value} << 16) |
                            address.port,
                        std::memory_order_relaxed);
    metrics.total_time = transport_->now() - start;
    // Per-replica end-to-end latency: the series the latency SLO watches,
    // labeled so a burn-rate alert names the slow replica directly.
    registry_
        ->histogram("proxy.fetch_ms", fetch_ms_bounds(),
                    {{"replica", address.to_string()}})
        .observe(util::to_millis(metrics.total_time));
    cache_element(object_name, element_name, *binding, *element);
    return FetchResult{std::move(*element), binding->certified_as, metrics};
  }
  return last_error;
}

void GlobeDocProxy::register_health_checks(obs::AdminHttpServer& admin) {
  admin.add_health_check("naming", [this](net::ServerContext& ctx) {
    return obs::reachability_probe(ctx, config_.naming_root);
  });
  admin.add_health_check("location", [this](net::ServerContext& ctx) {
    return obs::reachability_probe(ctx, config_.location_site);
  });
  // Replica channel: the endpoint of the last successful fetch.  Vacuously
  // ready until one exists (nothing to probe yet).
  admin.add_health_check("replica", [this](net::ServerContext& ctx) {
    std::uint64_t packed = last_replica_.load(std::memory_order_relaxed);
    if ((packed >> 63) == 0) return util::Status::ok();
    net::Endpoint replica{
        net::HostId{static_cast<std::uint32_t>((packed >> 16) & 0xFFFFFFFF)},
        static_cast<std::uint16_t>(packed & 0xFFFF)};
    return obs::reachability_probe(ctx, replica);
  });
}

http::HttpResponse GlobeDocProxy::handle_browser_request(
    const http::HttpRequest& request) {
  if (is_hybrid_url(request.target)) {
    auto result = fetch_url(request.target);
    if (result.is_ok()) {
      auto resp = http::HttpResponse::make(200, "OK", result->element.content,
                                           result->element.content_type);
      if (result->certified_as.has_value()) {
        resp.headers.set("X-GlobeDoc-Certified-As", *result->certified_as);
      }
      return resp;
    }
    // The paper's "Security Check Failed" document.
    Status status = result.status();
    bool security_failure =
        status.code() == ErrorCode::kBadSignature ||
        status.code() == ErrorCode::kHashMismatch ||
        status.code() == ErrorCode::kExpired ||
        status.code() == ErrorCode::kWrongElement ||
        status.code() == ErrorCode::kOidMismatch ||
        status.code() == ErrorCode::kUntrustedIssuer;
    int code = security_failure ? 403 : (status.code() == ErrorCode::kNotFound ? 404 : 502);
    std::string body =
        "<html><head><title>Security Check Failed</title></head><body>"
        "<h1>" +
        std::string(security_failure ? "Security Check Failed" : "GlobeDoc Error") +
        "</h1><p>" + html_escape(status.to_string()) + "</p></body></html>";
    return http::HttpResponse::make(code, http::reason_for_status(code),
                                    util::to_bytes(body));
  }

  // Plain HTTP passthrough.
  if (!origin_.has_value()) {
    return http::HttpResponse::make(
        502, "Bad Gateway",
        util::to_bytes("<html><body>no origin configured</body></html>"));
  }
  http::HttpClient client(*transport_);
  auto resp = client.request(*origin_, request);
  if (!resp.is_ok()) {
    return http::HttpResponse::make(
        502, "Bad Gateway",
        util::to_bytes("<html><body>" + html_escape(resp.status().to_string()) +
                       "</body></html>"));
  }
  return *resp;
}

}  // namespace globe::globedoc
