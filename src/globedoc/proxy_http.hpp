// Browser-facing HTTP front end for the proxy (closing the loop of Fig. 3:
// "User's Web Browser -> 1. Request hybrid URL -> User's Proxy").
//
// Wraps a GlobeDocProxy as a MessageHandler speaking HTTP/1.1, so an
// unmodified browser pointed at the proxy's port transparently gets secure
// GlobeDoc fetches for hybrid URLs and plain passthrough for everything
// else.  Bind it on a SimNet endpoint or a TcpServer.
#pragma once

#include <memory>
#include <mutex>

#include "globedoc/proxy.hpp"

namespace globe::globedoc {

class ProxyHttpServer {
 public:
  /// Takes ownership of the proxy.  The handler serializes requests with a
  /// mutex: one user proxy serves one browser, as in the paper.
  explicit ProxyHttpServer(std::unique_ptr<GlobeDocProxy> proxy);

  net::MessageHandler handler();

  GlobeDocProxy& proxy() { return *proxy_; }

  std::size_t requests_served() const;

 private:
  mutable std::mutex mutex_;
  std::unique_ptr<GlobeDocProxy> proxy_;
  std::size_t requests_served_ = 0;
};

}  // namespace globe::globedoc
