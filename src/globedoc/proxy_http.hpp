// Browser-facing HTTP front end for the proxy (closing the loop of Fig. 3:
// "User's Web Browser -> 1. Request hybrid URL -> User's Proxy").
//
// Wraps a GlobeDocProxy as a MessageHandler speaking HTTP/1.1, so an
// unmodified browser pointed at the proxy's port transparently gets secure
// GlobeDoc fetches for hybrid URLs and plain passthrough for everything
// else.  Bind it on a SimNet endpoint or a TcpServer.
#pragma once

#include <memory>

#include "globedoc/proxy.hpp"
#include "util/mutex.hpp"

namespace globe::globedoc {

class ProxyHttpServer {
 public:
  /// Takes ownership of the proxy.  The handler serializes requests with a
  /// mutex: one user proxy serves one browser, as in the paper.
  explicit ProxyHttpServer(std::unique_ptr<GlobeDocProxy> proxy);

  net::MessageHandler handler();

  /// Setup/inspection escape hatch: grants unsynchronized access to the
  /// wrapped proxy.  Callers must not race with a live handler().
  GlobeDocProxy& proxy() GLOBE_NO_THREAD_SAFETY_ANALYSIS { return *proxy_; }

  std::size_t requests_served() const GLOBE_EXCLUDES(mutex_);

 private:
  mutable util::Mutex mutex_;
  // One user proxy serves one browser (paper Fig. 3): the proxy object and
  // the request counter are both driven under the handler mutex.
  std::unique_ptr<GlobeDocProxy> proxy_ GLOBE_PT_GUARDED_BY(mutex_);
  std::size_t requests_served_ GLOBE_GUARDED_BY(mutex_) = 0;
};

}  // namespace globe::globedoc
