#include "globedoc/hybrid_url.hpp"

namespace globe::globedoc {

using util::ErrorCode;
using util::Result;

namespace {

constexpr std::string_view kHttpPrefix = "http://globe/";
constexpr std::string_view kSchemePrefix = "globe://";
constexpr std::string_view kTargetPrefix = "/globe/";  // proxy-relative form

/// Strips a recognized prefix, or returns empty when not hybrid.
std::string_view strip_prefix(std::string_view url) {
  for (std::string_view prefix : {kHttpPrefix, kSchemePrefix, kTargetPrefix}) {
    if (url.substr(0, prefix.size()) == prefix) return url.substr(prefix.size());
  }
  return {};
}

}  // namespace

bool is_hybrid_url(std::string_view url) { return !strip_prefix(url).empty(); }

Result<HybridUrl> parse_hybrid_url(std::string_view url) {
  std::string_view rest = strip_prefix(url);
  if (rest.empty()) {
    return Result<HybridUrl>(ErrorCode::kInvalidArgument,
                             "not a hybrid GlobeDoc URL: " + std::string(url));
  }
  // Canonicalize over query/fragment decoration: GlobeDoc elements are
  // addressed by (object, element) alone, so "logo.gif?v=2" and
  // "logo.gif#top" name the SAME element as "logo.gif".  Stripping here
  // makes decorated duplicates share one cache key, one coalesced fill and
  // one upstream fetch instead of being treated as distinct content.
  std::size_t decoration = rest.find_first_of("?#");
  if (decoration != std::string_view::npos) rest = rest.substr(0, decoration);
  std::size_t slash = rest.find('/');
  if (slash == std::string_view::npos || slash == 0 || slash + 1 >= rest.size()) {
    return Result<HybridUrl>(ErrorCode::kInvalidArgument,
                             "hybrid URL needs <object>/<element>: " +
                                 std::string(url));
  }
  HybridUrl out;
  out.object_name = std::string(rest.substr(0, slash));
  out.element_name = std::string(rest.substr(slash + 1));
  return out;
}

}  // namespace globe::globedoc
