// Observability substrate (S23): a thread-safe metrics registry.
//
// Every layer of the stack — proxy, object server, naming, location,
// replication — reports what it does through counters, gauges and
// fixed-bucket histograms addressed by (name, label set).  A registry
// snapshot is a plain value that the exporters (export.hpp) turn into
// flat text for humans or JSON for the BENCH_*.json artifacts, so the
// paper's §4 decomposition ("where does secure-fetch time go?") is
// observable at every layer instead of a single ad-hoc field.
//
// Concurrency: metric handles returned by the registry are stable for the
// registry's lifetime and individually thread-safe (atomics); the registry
// itself serializes registration and snapshotting with a mutex.  Handlers
// running on ThreadPool workers may increment concurrently.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "util/mutex.hpp"

namespace globe::obs {

/// Label set identifying one time series of a metric.  Stored sorted by
/// key; the registry normalizes whatever order the caller passes.
using Labels = std::vector<std::pair<std::string, std::string>>;

/// Monotonically increasing event count.
class Counter {
 public:
  void inc(std::uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Instantaneous value that can move both ways (queue depth, replica count).
class Gauge {
 public:
  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  void add(double d) { value_.fetch_add(d, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// 128-bit trace id attached to a histogram bucket: the trace that last
/// observed into it.  {0,0} = no exemplar recorded.
struct Exemplar {
  std::uint64_t trace_hi = 0;
  std::uint64_t trace_lo = 0;
  bool valid() const { return (trace_hi | trace_lo) != 0; }
};

/// Fixed-bucket histogram: `bounds` are strictly increasing upper bounds
/// (inclusive); one implicit overflow bucket catches everything above the
/// last bound.  Quantiles are estimated by linear interpolation inside the
/// bucket holding the target rank — exact bucket choice, approximate
/// position, the standard fixed-bucket trade-off.
///
/// Exemplars: every observation made while the calling thread is inside a
/// sampled trace span stamps its bucket with that trace's id, so a slow
/// bucket in /metrics or /federate links straight to a /tracez trace.
/// Best-effort under concurrency (the two id halves are separate relaxed
/// atomics, so a torn pair can mix two concurrent traces) — acceptable for
/// a debugging aid, never used for control decisions.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void observe(double v);

  std::uint64_t count() const;
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  const std::vector<double>& bounds() const { return bounds_; }
  /// Per-bucket counts; size() == bounds().size() + 1 (last = overflow).
  std::vector<std::uint64_t> bucket_counts() const;
  /// Per-bucket exemplars, same indexing as bucket_counts().
  std::vector<Exemplar> exemplars() const;

  /// Estimated q-quantile (q in [0,1]).  Returns 0 when empty.  Ranks that
  /// land in the overflow bucket report the last finite bound (the
  /// histogram cannot see past it).
  double quantile(double q) const;

  /// Drops every observation, keeping the bucket layout.
  void reset();

 private:
  struct BucketExemplar {
    std::atomic<std::uint64_t> hi{0};
    std::atomic<std::uint64_t> lo{0};
  };

  std::vector<double> bounds_;
  std::vector<std::atomic<std::uint64_t>> counts_;  // bounds_.size() + 1
  std::vector<BucketExemplar> exemplars_;           // parallel to counts_
  std::atomic<double> sum_{0.0};
};

/// The quantile estimator of Histogram::quantile over explicit bucket
/// counts (`counts.size() == bounds.size() + 1`, last = overflow) — shared
/// with merged snapshot samples, whose buckets exist only as plain vectors.
double bucket_quantile(const std::vector<double>& bounds,
                       const std::vector<std::uint64_t>& counts, double q);

/// One metric's state at snapshot time.
struct MetricSample {
  enum class Kind { kCounter, kGauge, kHistogram };

  std::string name;
  Labels labels;
  Kind kind = Kind::kCounter;
  double value = 0;  // counter/gauge value; histogram sum

  // Histogram-only fields (empty otherwise).
  std::vector<double> bounds;
  std::vector<std::uint64_t> bucket_counts;
  std::vector<Exemplar> exemplars;  // per bucket; may be empty (none recorded)
  std::uint64_t count = 0;
  double p50 = 0, p90 = 0, p99 = 0;
};

/// Point-in-time copy of a whole registry, ordered by (name, labels).
struct Snapshot {
  std::vector<MetricSample> samples;
};

/// Merges histogram sample `from` into `into` bucket-wise: counts and sums
/// add, quantiles are re-estimated from the merged buckets, and `from`'s
/// exemplars overwrite where present (last writer wins, matching gauge
/// semantics).  Returns false — leaving `into` untouched — when either
/// sample is not a histogram or the bucket layouts differ: snapshots from
/// different build generations must not silently blend.
bool merge_histogram_sample(MetricSample& into, const MetricSample& from);

class MetricsRegistry {
 public:
  /// Returns the series for (name, labels), creating it on first use.
  /// References stay valid for the registry's lifetime (reset() included:
  /// reset zeroes values but never deletes series).
  Counter& counter(const std::string& name, Labels labels = {})
      GLOBE_EXCLUDES(mutex_);
  Gauge& gauge(const std::string& name, Labels labels = {}) GLOBE_EXCLUDES(mutex_);
  /// `bounds` applies on first registration; later calls for the same
  /// series return the existing histogram unchanged.
  Histogram& histogram(const std::string& name, std::vector<double> bounds,
                       Labels labels = {}) GLOBE_EXCLUDES(mutex_);

  /// Labels stamped on every sample at snapshot time — how a per-node
  /// registry tags itself (node=, role=) without touching each call site.
  /// A series label with the same key wins over the default.
  void set_default_labels(Labels labels) GLOBE_EXCLUDES(mutex_);
  Labels default_labels() const GLOBE_EXCLUDES(mutex_);

  Snapshot snapshot() const GLOBE_EXCLUDES(mutex_);

  /// Zeroes every counter/gauge and drops every histogram observation,
  /// keeping handles valid — lets one process run several independent
  /// bench scenarios.
  void reset() GLOBE_EXCLUDES(mutex_);

 private:
  struct Key {
    std::string name;
    Labels labels;
    bool operator<(const Key& o) const {
      return name != o.name ? name < o.name : labels < o.labels;
    }
  };

  mutable util::Mutex mutex_;
  // Map *structure* is guarded; the pointed-to metric objects are internally
  // thread-safe atomics updated without the registry lock.
  std::map<Key, std::unique_ptr<Counter>> counters_ GLOBE_GUARDED_BY(mutex_);
  std::map<Key, std::unique_ptr<Gauge>> gauges_ GLOBE_GUARDED_BY(mutex_);
  std::map<Key, std::unique_ptr<Histogram>> histograms_ GLOBE_GUARDED_BY(mutex_);
  Labels default_labels_ GLOBE_GUARDED_BY(mutex_);
};

/// Process-wide default registry.  Components report here unless handed a
/// specific registry; benches snapshot/reset it between scenarios.
MetricsRegistry& global_registry();

}  // namespace globe::obs
