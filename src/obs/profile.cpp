#include "obs/profile.hpp"

#include <algorithm>
#include <chrono>
#include <ctime>
#include <iomanip>
#include <sstream>

#include "obs/metrics.hpp"

namespace globe::obs {

namespace {

std::uint64_t real_wall_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

std::uint64_t real_cpu_ns() {
#if defined(CLOCK_THREAD_CPUTIME_ID)
  timespec ts{};
  if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) == 0) {
    return static_cast<std::uint64_t>(ts.tv_sec) * 1'000'000'000ULL +
           static_cast<std::uint64_t>(ts.tv_nsec);
  }
#endif
  return real_wall_ns();
}

/// Per-thread probe state: the folded path of open probes plus, per open
/// frame, the accumulated inclusive time of its finished children (what
/// self time subtracts).  No lock: each thread owns its own stack.
struct OpenFrame {
  std::size_t parent_len = 0;  // path length before this frame's segment
  std::uint64_t child_wall = 0;
  std::uint64_t child_cpu = 0;
};

struct ThreadState {
  std::string path;
  std::vector<OpenFrame> frames;
  ProfileRegistry* scope = nullptr;
};

thread_local ThreadState t_state;

}  // namespace

ProfileRegistry::ProfileRegistry()
    : wall_clock_(&real_wall_ns), cpu_clock_(&real_cpu_ns) {}

void ProfileRegistry::set_clocks(ClockFn wall, ClockFn cpu) {
  if (wall) wall_clock_ = std::move(wall);
  if (cpu) cpu_clock_ = std::move(cpu);
}

ProfileRegistry::Shard& ProfileRegistry::shard_for(std::string_view stack) {
  return shards_[std::hash<std::string_view>{}(stack) % kShards];
}

const ProfileRegistry::Shard& ProfileRegistry::shard_for(
    std::string_view stack) const {
  return shards_[std::hash<std::string_view>{}(stack) % kShards];
}

void ProfileRegistry::record(std::string_view stack, const ProbeStat& delta) {
  Shard& shard = shard_for(stack);
  util::LockGuard lock(shard.mutex);
  auto it = shard.stacks.find(stack);
  if (it == shard.stacks.end()) {
    if (shard.stacks.size() >= kMaxStacksPerShard) {
      ++shard.dropped;
      return;
    }
    it = shard.stacks.emplace(std::string(stack), ProbeStat{}).first;
  }
  ProbeStat& stat = it->second;
  stat.calls += delta.calls;
  stat.wall_ns += delta.wall_ns;
  stat.cpu_ns += delta.cpu_ns;
  stat.self_wall_ns += delta.self_wall_ns;
  stat.self_cpu_ns += delta.self_cpu_ns;
}

ProfileSnapshot ProfileRegistry::snapshot() const {
  ProfileSnapshot out;
  for (const Shard& shard : shards_) {
    util::LockGuard lock(shard.mutex);
    for (const auto& [stack, stat] : shard.stacks) {
      ProfileSample sample;
      sample.stack = stack;
      std::size_t pos = stack.rfind(';');
      sample.leaf = pos == std::string::npos ? stack : stack.substr(pos + 1);
      sample.stat = stat;
      out.samples.push_back(std::move(sample));
    }
  }
  std::sort(out.samples.begin(), out.samples.end(),
            [](const ProfileSample& a, const ProfileSample& b) {
              return a.stack < b.stack;
            });
  return out;
}

void ProfileRegistry::reset() {
  for (Shard& shard : shards_) {
    util::LockGuard lock(shard.mutex);
    shard.stacks.clear();
  }
}

std::uint64_t ProfileRegistry::dropped() const {
  std::uint64_t total = 0;
  for (const Shard& shard : shards_) {
    util::LockGuard lock(shard.mutex);
    total += shard.dropped;
  }
  return total;
}

void ProfileRegistry::publish_to(MetricsRegistry& registry) {
  ProfileSnapshot snap = snapshot();
  std::map<std::string, ProbeStat> by_leaf;
  for (const ProfileSample& sample : snap.samples) {
    ProbeStat& agg = by_leaf[sample.leaf];
    agg.calls += sample.stat.calls;
    agg.wall_ns += sample.stat.wall_ns;
    agg.cpu_ns += sample.stat.cpu_ns;
  }
  util::LockGuard lock(publish_mutex_);
  for (const auto& [leaf, current] : by_leaf) {
    auto it = published_.find(leaf);
    if (it == published_.end()) {
      if (published_.size() >= kMaxPublishedLeaves) continue;
      it = published_.emplace(leaf, ProbeStat{}).first;
    }
    ProbeStat& prev = it->second;
    // reset() can pull the aggregate below the last published value; the
    // delta clamps to 0 and the baseline resyncs so counters stay monotone.
    auto step = [](std::uint64_t cur, std::uint64_t& last) {
      std::uint64_t d = cur >= last ? cur - last : 0;
      last = cur;
      return d;
    };
    Labels labels{{"probe", leaf}};
    registry.counter("profile.calls", labels).inc(step(current.calls, prev.calls));
    registry.counter("profile.wall_ns", labels)
        .inc(step(current.wall_ns, prev.wall_ns));
    registry.counter("profile.cpu_ns", labels)
        .inc(step(current.cpu_ns, prev.cpu_ns));
  }
}

ProfileRegistry& global_profile_registry() {
  static ProfileRegistry* registry = new ProfileRegistry();  // never destroyed
  return *registry;
}

ProfileRegistryScope::ProfileRegistryScope(ProfileRegistry* registry)
    : prev_(t_state.scope) {
  // nullptr = "no opinion": keep the ambient scope so an unconfigured
  // component nested under a scoped caller doesn't reroute to the global.
  if (registry != nullptr) t_state.scope = registry;
}

ProfileRegistryScope::~ProfileRegistryScope() { t_state.scope = prev_; }

ProfileRegistry& ProfileRegistryScope::current() {
  return t_state.scope != nullptr ? *t_state.scope : global_profile_registry();
}

CostProbe::CostProbe(const char* label, ProfileRegistry* registry)
    : registry_(registry), label_(label) {
  ThreadState& st = t_state;
  if (registry_ == nullptr) {
    registry_ = st.scope != nullptr ? st.scope : &global_profile_registry();
  }
  if (st.frames.size() >= kMaxDepth) {
    registry_ = nullptr;  // inert: bounded path length beats a deep stack
    return;
  }
  OpenFrame frame;
  frame.parent_len = st.path.size();
  if (!st.path.empty()) st.path.push_back(';');
  st.path.append(label_);
  st.frames.push_back(frame);
  wall_start_ = registry_->wall_now();
  cpu_start_ = registry_->cpu_now();
}

CostProbe::~CostProbe() {
  if (registry_ == nullptr) return;
  // Clocks read before the frame pop so the probe's own bookkeeping below
  // is not billed to it.
  std::uint64_t wall_end = registry_->wall_now();
  std::uint64_t cpu_end = registry_->cpu_now();
  ThreadState& st = t_state;
  OpenFrame frame = st.frames.back();
  st.frames.pop_back();
  std::uint64_t wall = wall_end >= wall_start_ ? wall_end - wall_start_ : 0;
  std::uint64_t cpu = cpu_end >= cpu_start_ ? cpu_end - cpu_start_ : 0;
  ProbeStat delta;
  delta.calls = 1;
  delta.wall_ns = wall;
  delta.cpu_ns = cpu;
  delta.self_wall_ns = wall >= frame.child_wall ? wall - frame.child_wall : 0;
  delta.self_cpu_ns = cpu >= frame.child_cpu ? cpu - frame.child_cpu : 0;
  registry_->record(st.path, delta);
  st.path.resize(frame.parent_len);
  if (!st.frames.empty()) {
    st.frames.back().child_wall += wall;
    st.frames.back().child_cpu += cpu;
  }
}

std::string to_folded(const ProfileSnapshot& snapshot) {
  std::ostringstream os;
  for (const ProfileSample& sample : snapshot.samples) {
    os << sample.stack << ' ' << sample.stat.self_cpu_ns << '\n';
  }
  return os.str();
}

std::string to_table(const ProfileSnapshot& snapshot, std::size_t top_n) {
  std::vector<const ProfileSample*> rows;
  rows.reserve(snapshot.samples.size());
  for (const ProfileSample& sample : snapshot.samples) rows.push_back(&sample);
  std::sort(rows.begin(), rows.end(),
            [](const ProfileSample* a, const ProfileSample* b) {
              if (a->stat.cpu_ns != b->stat.cpu_ns) {
                return a->stat.cpu_ns > b->stat.cpu_ns;
              }
              return a->stack < b->stack;
            });
  if (rows.size() > top_n) rows.resize(top_n);
  std::ostringstream os;
  os << "# profile: top " << rows.size() << " of " << snapshot.samples.size()
     << " stacks by cpu_ns\n";
  os << std::setw(14) << "cpu_ns" << std::setw(10) << "calls" << std::setw(12)
     << "ns/call" << std::setw(14) << "wall_ns" << "  stack\n";
  for (const ProfileSample* row : rows) {
    std::uint64_t per_call =
        row->stat.calls == 0 ? 0 : row->stat.cpu_ns / row->stat.calls;
    os << std::setw(14) << row->stat.cpu_ns << std::setw(10) << row->stat.calls
       << std::setw(12) << per_call << std::setw(14) << row->stat.wall_ns
       << "  " << row->stack << '\n';
  }
  return os.str();
}

}  // namespace globe::obs
