#include "obs/trace.hpp"

#include <cassert>
#include <utility>

namespace globe::obs {

util::SimDuration span_total(const SpanRecord& root, std::string_view name) {
  util::SimDuration total = root.name == name ? root.duration : 0;
  for (const SpanRecord& child : root.children) total += span_total(child, name);
  return total;
}

const SpanRecord* find_span(const SpanRecord& root, std::string_view name) {
  if (root.name == name) return &root;
  for (const SpanRecord& child : root.children) {
    if (const SpanRecord* found = find_span(child, name)) return found;
  }
  return nullptr;
}

Tracer::Tracer(NowFn now) : now_(std::move(now)) {}

Tracer::Tracer(const util::Clock& clock)
    : now_([&clock] { return clock.now(); }) {}

Tracer::Span::Span(Span&& other) noexcept
    : tracer_(other.tracer_), node_(other.node_) {
  other.node_ = nullptr;
}

Tracer::Span& Tracer::Span::operator=(Span&& other) noexcept {
  if (this != &other) {
    end();
    tracer_ = other.tracer_;
    node_ = other.node_;
    other.node_ = nullptr;
  }
  return *this;
}

Tracer::Span::~Span() { end(); }

void Tracer::Span::end() {
  if (node_ == nullptr) return;
  tracer_->end_node(node_);
  node_ = nullptr;
}

Tracer::Span Tracer::span(std::string name) {
  SpanRecord node;
  node.name = std::move(name);
  node.start = now_();

  SpanRecord* placed;
  if (stack_.empty()) {
    root_ = std::make_unique<SpanRecord>(std::move(node));
    placed = root_.get();
  } else {
    // Appending to the innermost open span only: pointers held in stack_
    // are the ancestors of `placed`, whose own children vectors are
    // untouched, so they stay valid.
    stack_.back()->children.push_back(std::move(node));
    placed = &stack_.back()->children.back();
  }
  stack_.push_back(placed);
  return Span(this, placed);
}

void Tracer::end_node(SpanRecord* node) {
  // A handle can outlive its span when an ancestor's end() already closed
  // it; ending twice is a no-op.
  bool open = false;
  for (SpanRecord* s : stack_) {
    if (s == node) {
      open = true;
      break;
    }
  }
  if (!open) return;

  util::SimTime now = now_();
  // Close `node` and any open descendants (innermost first) at the same
  // instant.
  while (!stack_.empty()) {
    SpanRecord* top = stack_.back();
    stack_.pop_back();
    top->duration = now >= top->start ? now - top->start : 0;
    if (top == node) break;
  }
  if (stack_.empty() && root_) {
    finished_.push_back(std::move(*root_));
    root_.reset();
  }
}

std::vector<SpanRecord> Tracer::take_finished() {
  return std::exchange(finished_, {});
}

}  // namespace globe::obs
