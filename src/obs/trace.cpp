#include "obs/trace.hpp"

#include <atomic>
#include <cassert>
#include <cstdio>
#include <random>
#include <utility>

namespace globe::obs {

namespace {

/// splitmix64 finalizer: a bijection on u64, so distinct counter values can
/// never collide.  Used instead of util::SplitMix64 to avoid shared mutable
/// state — each id mixes a fresh atomic counter value.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// Per-process entropy folded into the counter's start, so independently
/// started processes (the wire header crosses real process boundaries in
/// the TCP deployment) don't all emit the identical span-id sequence.
std::uint64_t id_counter_seed() {
  std::random_device rd;
  std::uint64_t seed = (static_cast<std::uint64_t>(rd()) << 32) ^ rd();
  return seed != 0 ? seed : 1;
}

std::atomic<std::uint64_t> g_id_counter{id_counter_seed()};

/// Innermost open span of this thread, as seen by the RPC layer.
thread_local TraceContext t_current_context;

}  // namespace

std::uint64_t next_span_id() {
  std::uint64_t id = mix64(g_id_counter.fetch_add(1, std::memory_order_relaxed));
  return id != 0 ? id : 1;
}

std::string TraceContext::trace_id() const {
  char buf[33];
  std::snprintf(buf, sizeof buf, "%016llx%016llx",
                static_cast<unsigned long long>(trace_hi),
                static_cast<unsigned long long>(trace_lo));
  return buf;
}

void TraceContext::encode(util::Writer& w) const {
  w.u64(trace_hi);
  w.u64(trace_lo);
  w.u64(parent_span);
  w.u8(sampled ? 1 : 0);
}

TraceContext TraceContext::decode(util::Reader& r) {
  TraceContext ctx;
  ctx.trace_hi = r.u64();
  ctx.trace_lo = r.u64();
  ctx.parent_span = r.u64();
  ctx.sampled = (r.u8() & 1) != 0;
  return ctx;
}

TraceContext current_trace_context() { return t_current_context; }

util::SimDuration span_total(const SpanRecord& root, std::string_view name) {
  util::SimDuration total = root.name == name ? root.duration : 0;
  for (const SpanRecord& child : root.children) total += span_total(child, name);
  return total;
}

const SpanRecord* find_span(const SpanRecord& root, std::string_view name) {
  if (root.name == name) return &root;
  for (const SpanRecord& child : root.children) {
    if (const SpanRecord* found = find_span(child, name)) return found;
  }
  return nullptr;
}

namespace {
void collect_spans(const SpanRecord& root, std::string_view name,
                   std::vector<const SpanRecord*>& out) {
  if (root.name == name) out.push_back(&root);
  for (const SpanRecord& child : root.children) collect_spans(child, name, out);
}
}  // namespace

std::vector<const SpanRecord*> find_all_spans(const SpanRecord& root,
                                              std::string_view name) {
  std::vector<const SpanRecord*> out;
  collect_spans(root, name, out);
  return out;
}

util::SimDuration remote_span_total(const SpanRecord& root,
                                    std::string_view prefix) {
  if (root.name.compare(0, prefix.size(), prefix) == 0) return root.duration;
  util::SimDuration total = 0;
  for (const SpanRecord& child : root.children) {
    total += remote_span_total(child, prefix);
  }
  return total;
}

Tracer::Tracer(NowFn now) : now_(std::move(now)) {}

Tracer::Tracer(const util::Clock& clock)
    : now_([&clock] { return clock.now(); }) {}

Tracer::Span::Span(Span&& other) noexcept
    : tracer_(other.tracer_), node_(other.node_) {
  other.node_ = nullptr;
}

Tracer::Span& Tracer::Span::operator=(Span&& other) noexcept {
  if (this != &other) {
    end();
    tracer_ = other.tracer_;
    node_ = other.node_;
    other.node_ = nullptr;
  }
  return *this;
}

Tracer::Span::~Span() { end(); }

void Tracer::Span::end() {
  if (node_ == nullptr) return;
  tracer_->end_node(node_);
  node_ = nullptr;
}

void Tracer::publish_current() {
  if (stack_.empty()) {
    t_current_context = enclosing_;
    return;
  }
  t_current_context = TraceContext{trace_hi_, trace_lo_,
                                   stack_.back()->span_id, sampled_};
}

Tracer::Span Tracer::span(std::string name) {
  SpanRecord node;
  node.name = std::move(name);
  node.start = now_();
  node.span_id = next_span_id();

  SpanRecord* placed;
  if (stack_.empty()) {
    // Root: join the adopted remote trace if there is one, else start a
    // fresh trace; remember the thread context in force so it can be
    // restored when this root closes (tracers on one thread nest strictly).
    enclosing_ = t_current_context;
    if (inherited_.valid()) {
      trace_hi_ = inherited_.trace_hi;
      trace_lo_ = inherited_.trace_lo;
      root_parent_ = inherited_.parent_span;
      sampled_ = inherited_.sampled;
    } else {
      trace_hi_ = next_span_id();
      trace_lo_ = next_span_id();
      root_parent_ = 0;
      sampled_ = true;
    }
    node.host = host_;
    root_ = std::make_unique<SpanRecord>(std::move(node));
    placed = root_.get();
  } else {
    // Appending to the innermost open span only: pointers held in stack_
    // are the ancestors of `placed`, whose own children vectors are
    // untouched, so they stay valid.
    stack_.back()->children.push_back(std::move(node));
    placed = &stack_.back()->children.back();
  }
  stack_.push_back(placed);
  publish_current();
  return Span(this, placed);
}

void Tracer::end_node(SpanRecord* node) {
  // A handle can outlive its span when an ancestor's end() already closed
  // it; ending twice is a no-op.
  bool open = false;
  for (SpanRecord* s : stack_) {
    if (s == node) {
      open = true;
      break;
    }
  }
  if (!open) return;

  util::SimTime now = now_();
  // Close `node` and any open descendants (innermost first) at the same
  // instant.
  while (!stack_.empty()) {
    SpanRecord* top = stack_.back();
    stack_.pop_back();
    top->duration = now >= top->start ? now - top->start : 0;
    if (top == node) break;
  }
  publish_current();
  if (stack_.empty() && root_) {
    if (sink_ != nullptr && sampled_) {
      sink_->record(TraceFragment{trace_hi_, trace_lo_, root_parent_, sampled_,
                                  *root_});
    }
    finished_.push_back(std::move(*root_));
    root_.reset();
  }
}

std::vector<SpanRecord> Tracer::take_finished() {
  std::vector<SpanRecord> out = std::move(finished_);
  finished_.clear();  // defined-empty, and the drain is visible to bounds_check
  return out;
}

}  // namespace globe::obs
