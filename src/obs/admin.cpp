#include "obs/admin.hpp"

#include <sstream>

#include "http/parser.hpp"
#include "obs/consistency.hpp"
#include "obs/export.hpp"
#include "obs/slo.hpp"
#include "obs/telemetry.hpp"
#include "util/serial.hpp"

namespace globe::obs {

using http::HttpRequest;
using http::HttpResponse;
using util::Bytes;
using util::BytesView;
using util::Result;
using util::Status;

namespace {

/// Upper bound on the min_ms filter: ~11.5 days, far beyond any trace, and
/// small enough that millis() cannot overflow.
constexpr std::uint64_t kMaxMinMs = 1'000'000'000;

/// Strict sanitizer for the /tracez query string.  Accepts exactly "" or
/// "min_ms=<1..10 digits>"; everything else — stray parameters, empty
/// value, signs, whitespace, overlong numbers — is INVALID_ARGUMENT.  The
/// input came off the wire; after this gate only a bounded integer
/// survives, so nothing attacker-controlled can reach a response body.
GLOBE_SANITIZER Result<std::uint64_t> parse_tracez_query(
    GLOBE_UNTRUSTED const std::string& query) {
  if (query.empty()) return std::uint64_t{0};
  constexpr std::string_view kKey = "min_ms=";
  if (query.size() <= kKey.size() || query.compare(0, kKey.size(), kKey) != 0) {
    return Status(util::ErrorCode::kInvalidArgument, "unknown query parameter");
  }
  std::string_view digits = std::string_view(query).substr(kKey.size());
  if (digits.size() > 10) {
    return Status(util::ErrorCode::kInvalidArgument, "min_ms out of range");
  }
  std::uint64_t value = 0;
  for (char c : digits) {
    if (c < '0' || c > '9') {
      return Status(util::ErrorCode::kInvalidArgument, "min_ms not a number");
    }
    value = value * 10 + static_cast<std::uint64_t>(c - '0');
  }
  if (value > kMaxMinMs) {
    return Status(util::ErrorCode::kInvalidArgument, "min_ms out of range");
  }
  return value;
}

/// Parsed /profilez query: table by default, folded stacks on request.
struct ProfilezQuery {
  bool folded = false;
  std::uint64_t top_n = 20;
};

/// Upper bound on the n= row filter: far more stacks than the registry can
/// hold, and small enough that rendering stays cheap.
constexpr std::uint64_t kMaxProfileRows = 10'000;

/// Strict sanitizer for the /profilez query string, same discipline as
/// /tracez: accepts exactly "", "fmt=folded", "n=<1..5 digits>" or
/// "fmt=folded&n=<1..5 digits>"; anything else — stray parameters, other
/// fmt words, signs, whitespace — is INVALID_ARGUMENT.  After this gate
/// only a flag and a bounded integer survive, so nothing attacker-chosen
/// can reach a response body.
GLOBE_SANITIZER Result<ProfilezQuery> parse_profilez_query(
    GLOBE_UNTRUSTED const std::string& query) {
  ProfilezQuery out;
  std::string_view rest = query;
  constexpr std::string_view kFmt = "fmt=folded";
  if (rest.substr(0, kFmt.size()) == kFmt) {
    out.folded = true;
    rest.remove_prefix(kFmt.size());
    if (!rest.empty()) {
      if (rest[0] != '&') {
        return Status(util::ErrorCode::kInvalidArgument, "unknown fmt");
      }
      rest.remove_prefix(1);
      if (rest.empty()) {
        return Status(util::ErrorCode::kInvalidArgument, "trailing separator");
      }
    }
  }
  if (rest.empty()) return out;
  constexpr std::string_view kN = "n=";
  if (rest.size() <= kN.size() || rest.substr(0, kN.size()) != kN) {
    return Status(util::ErrorCode::kInvalidArgument, "unknown query parameter");
  }
  std::string_view digits = rest.substr(kN.size());
  if (digits.size() > 5) {  // kMaxProfileRows = 10000 needs five digits
    return Status(util::ErrorCode::kInvalidArgument, "n out of range");
  }
  std::uint64_t value = 0;
  for (char c : digits) {
    if (c < '0' || c > '9') {
      return Status(util::ErrorCode::kInvalidArgument, "n not a number");
    }
    value = value * 10 + static_cast<std::uint64_t>(c - '0');
  }
  if (value == 0 || value > kMaxProfileRows) {
    return Status(util::ErrorCode::kInvalidArgument, "n out of range");
  }
  out.top_n = value;
  return out;
}

/// Strict sanitizer for the /replicaz query string.  Accepts exactly "" or
/// "state=<one of the six ReplicaConsistency names>"; everything else is
/// INVALID_ARGUMENT.  After this gate only a vetted constant survives —
/// the filter string in the response is ours, never the peer's.
GLOBE_SANITIZER Result<std::string> parse_replicaz_query(
    GLOBE_UNTRUSTED const std::string& query) {
  if (query.empty()) return std::string();
  constexpr std::string_view kKey = "state=";
  if (query.size() <= kKey.size() || query.compare(0, kKey.size(), kKey) != 0) {
    return Status(util::ErrorCode::kInvalidArgument, "unknown query parameter");
  }
  std::string_view want = std::string_view(query).substr(kKey.size());
  static constexpr std::string_view kStates[] = {
      "fresh", "stale", "diverged", "expired", "missing", "unreachable"};
  for (std::string_view state : kStates) {
    if (want == state) return std::string(state);
  }
  return Status(util::ErrorCode::kInvalidArgument, "unknown state filter");
}

/// Static error bodies only: a 4xx must not echo what the peer sent.
HttpResponse error_response(int status, std::string_view body) {
  return HttpResponse::make(status, http::reason_for_status(status),
                            util::to_bytes(body), "text/plain");
}

void trace_to_json(std::ostringstream& os, const StitchedTrace& trace) {
  os << "{\"trace_id\":\"" << trace.trace_id()
     << "\",\"duration_ms\":" << util::to_millis(trace.duration())
     << ",\"complete\":" << (trace.complete ? "true" : "false")
     << ",\"fragments\":" << trace.fragments
     << ",\"root\":" << to_json(trace.root) << '}';
}

}  // namespace

Status reachability_probe(net::ServerContext& ctx, const net::Endpoint& ep) {
  Result<Bytes> reply = ctx.transport().call(ep, Bytes(4, 0));
  if (!reply.is_ok() && reply.code() == util::ErrorCode::kUnavailable) {
    return Status(util::ErrorCode::kUnavailable,
                  ep.to_string() + " unreachable");
  }
  return Status::ok();
}

AdminHttpServer::AdminHttpServer(AdminConfig config)
    : config_(std::move(config)) {
  if (config_.registry == nullptr) config_.registry = &global_registry();
  if (config_.collector == nullptr) config_.collector = &global_trace_collector();
  if (config_.events == nullptr) config_.events = &global_event_log();
  if (config_.profile == nullptr) config_.profile = &global_profile_registry();
}

void AdminHttpServer::add_health_check(std::string name, HealthProbe probe) {
  util::LockGuard lock(mutex_);
  checks_.emplace_back(std::move(name), std::move(probe));
}

HttpResponse AdminHttpServer::serve_metrics() {
  // Fold the cost profile into the registry first, so every scrape — local
  // /metrics and the telemetry plane that feeds /federate — sees current
  // profile.* counters.
  config_.profile->publish_to(*config_.registry);
  HttpResponse resp = HttpResponse::make(
      200, "OK", util::to_bytes(to_text(config_.registry->snapshot())),
      "text/plain");
  return resp;
}

HttpResponse AdminHttpServer::serve_profilez(const std::string& query) {
  Result<ProfilezQuery> parsed = parse_profilez_query(query);
  if (!parsed.is_ok()) {
    return error_response(400,
                          "400 bad query: expected fmt=folded and/or n=<rows>\n");
  }
  // Re-clamp the row count through the length guard: top_n sizes the table
  // buffer, and it arrived in an untrusted query string.
  std::uint32_t top_n = util::checked_count(
      static_cast<std::uint32_t>(parsed->top_n),
      static_cast<std::uint32_t>(kMaxProfileRows));
  ProfileSnapshot snap = config_.profile->snapshot();
  std::string body = parsed->folded
                         ? to_folded(snap)
                         : to_table(snap, static_cast<std::size_t>(top_n));
  return HttpResponse::make(200, "OK", util::to_bytes(body), "text/plain");
}

HttpResponse AdminHttpServer::serve_healthz(net::ServerContext& ctx) {
  // Snapshot the check list, then probe WITHOUT the lock: probes make
  // nested transport calls and must not serialize against registration.
  std::vector<std::pair<std::string, HealthProbe>> checks;
  {
    util::LockGuard lock(mutex_);
    checks = checks_;
  }
  bool all_ok = true;
  std::ostringstream os;
  os << "{\"service\":\"" << json_escape(config_.service) << "\",\"checks\":[";
  for (std::size_t i = 0; i < checks.size(); ++i) {
    Status s = checks[i].second(ctx);
    if (!s.is_ok()) all_ok = false;
    if (i > 0) os << ',';
    os << "{\"name\":\"" << json_escape(checks[i].first)
       << "\",\"ok\":" << (s.is_ok() ? "true" : "false");
    if (!s.is_ok()) os << ",\"error\":\"" << json_escape(s.to_string()) << '"';
    os << '}';
  }
  os << "],\"status\":\"" << (all_ok ? "ok" : "degraded") << "\"}";
  int status = all_ok ? 200 : 503;
  config_.events->emit(all_ok ? EventLevel::kDebug : EventLevel::kWarn,
                       "admin", "healthz",
                       config_.service + " " + (all_ok ? "ok" : "degraded"),
                       ctx.now());
  return HttpResponse::make(status, http::reason_for_status(status),
                            util::to_bytes(os.str()), "application/json");
}

HttpResponse AdminHttpServer::serve_tracez(const std::string& query) {
  Result<std::uint64_t> min_ms = parse_tracez_query(query);
  if (!min_ms.is_ok()) {
    return error_response(400, "400 bad query: expected min_ms=<millis>\n");
  }
  std::vector<StitchedTrace> traces =
      config_.collector->recent(64, util::millis(*min_ms));
  std::ostringstream os;
  os << "{\"min_ms\":" << *min_ms
     << ",\"seen\":" << config_.collector->traces_seen()
     << ",\"kept\":" << config_.collector->traces_kept() << ",\"traces\":[";
  for (std::size_t i = 0; i < traces.size(); ++i) {
    if (i > 0) os << ',';
    trace_to_json(os, traces[i]);
  }
  os << "]}";
  return HttpResponse::make(200, "OK", util::to_bytes(os.str()),
                            "application/json");
}

HttpResponse AdminHttpServer::serve_federate() {
  // Node health first, as exposition comments — a stale node has NO series
  // below (its last snapshot is excluded from the merge), so the header is
  // the only place its absence is explained.
  std::ostringstream os;
  for (const NodeStatus& node : config_.aggregator->nodes()) {
    os << "# node " << node.node << " role=" << node.role << ' '
       << (node.stale ? "stale" : "fresh") << " ok=" << node.scrapes_ok
       << " failed=" << node.scrapes_failed;
    if (!node.last_error.empty()) {
      // Scrape errors carry transport/protocol detail, not peer-chosen
      // bytes past the sanitizer; still keep them to one comment line.
      std::string error = node.last_error;
      for (char& c : error) {
        if (c == '\n' || c == '\r') c = ' ';
      }
      os << " error=\"" << error << '"';
    }
    os << '\n';
  }
  os << to_text(config_.aggregator->merged());
  return HttpResponse::make(200, "OK", util::to_bytes(os.str()), "text/plain");
}

HttpResponse AdminHttpServer::serve_alertz(net::ServerContext& ctx) {
  config_.slo->evaluate(ctx.now());
  return HttpResponse::make(200, "OK", util::to_bytes(config_.slo->to_json()),
                            "application/json");
}

HttpResponse AdminHttpServer::serve_replicaz(const std::string& query) {
  Result<std::string> filter = parse_replicaz_query(query);
  if (!filter.is_ok()) {
    return error_response(
        400,
        "400 bad query: expected "
        "state=<fresh|stale|diverged|expired|missing|unreachable>\n");
  }
  std::vector<ReplicaRow> rows = config_.auditor->rows();
  std::ostringstream os;
  os << "# replicaz rounds=" << config_.auditor->rounds()
     << " replicas=" << config_.auditor->replica_count() << " converged="
     << (config_.auditor->converged() ? "true" : "false") << '\n';
  os << "# replica oid epoch master lag staleness_ms expiry_s state\n";
  for (const ReplicaRow& row : rows) {
    const char* state = replica_consistency_name(row.state);
    if (!filter->empty() && *filter != state) continue;
    std::uint64_t lag =
        row.master_epoch > row.epoch ? row.master_epoch - row.epoch : 0;
    os << row.replica << ' ' << row.oid_hex << " epoch=" << row.epoch
       << " master=" << row.master_epoch << " lag=" << lag
       << " staleness_ms=" << row.staleness_ms
       << " expiry_s=" << row.expiry_horizon_s << " state=" << state << '\n';
  }
  return HttpResponse::make(200, "OK", util::to_bytes(os.str()), "text/plain");
}

HttpResponse AdminHttpServer::handle(net::ServerContext& ctx,
                                     const HttpRequest& request) {
  if (request.method != "GET") {
    HttpResponse resp = error_response(405, "405 method not allowed\n");
    resp.headers.set("Allow", "GET");
    return resp;
  }
  std::string path = request.target;
  std::string query;
  if (std::size_t q = path.find('?'); q != std::string::npos) {
    query = path.substr(q + 1);
    path.resize(q);
  }
  if (path == "/metrics") {
    if (!query.empty()) return error_response(400, "400 bad query\n");
    return serve_metrics();
  }
  if (path == "/healthz") {
    if (!query.empty()) return error_response(400, "400 bad query\n");
    return serve_healthz(ctx);
  }
  if (path == "/tracez") return serve_tracez(query);
  if (path == "/profilez") return serve_profilez(query);
  if (path == "/federate" && config_.aggregator != nullptr) {
    if (!query.empty()) return error_response(400, "400 bad query\n");
    return serve_federate();
  }
  if (path == "/alertz" && config_.slo != nullptr) {
    if (!query.empty()) return error_response(400, "400 bad query\n");
    return serve_alertz(ctx);
  }
  if (path == "/replicaz" && config_.auditor != nullptr) {
    return serve_replicaz(query);
  }
  return error_response(404, "404 not found\n");
}

net::MessageHandler AdminHttpServer::handler() {
  return [this](net::ServerContext& ctx, BytesView raw) -> Result<Bytes> {
    Result<HttpRequest> req = http::parse_request(raw);
    if (!req.is_ok()) {
      return error_response(400, "400 bad request\n").serialize();
    }
    return handle(ctx, *req).serialize();
  };
}

}  // namespace globe::obs
