// Nested trace spans over a pluggable clock.
//
// A Tracer timestamps spans through a caller-supplied "now" function, so
// the same instrumented code records *virtual* SimNet time when driven by
// a simulated flow (`[&] { return flow->now(); }`) and wall-clock time in
// the live TCP examples (`[] { return RealClock{}.now(); }`).  Spans nest
// strictly: a span opened while another is in progress becomes its child,
// which is exactly the shape of the proxy's Fig. 3 pipeline — one "fetch"
// root with resolve / locate / key_check / identity / integrity_verify /
// element_verify children (the paper's Fig. 4 numerator is the sum of the
// last four).
//
// A Tracer belongs to one logical flow, like net::Transport: it is NOT
// thread-safe.  Use one tracer per concurrent fetch.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "util/clock.hpp"

namespace globe::obs {

/// One completed span: half-open interval [start, start + duration) with
/// completed children, in start order.
struct SpanRecord {
  std::string name;
  util::SimTime start = 0;
  util::SimDuration duration = 0;
  std::vector<SpanRecord> children;
};

/// Sum of the durations of every span named `name` in the tree (the tree
/// may contain several, e.g. one `key_check` per replica attempted).
util::SimDuration span_total(const SpanRecord& root, std::string_view name);

/// First span named `name` in depth-first order, or nullptr.
const SpanRecord* find_span(const SpanRecord& root, std::string_view name);

class Tracer {
 public:
  using NowFn = std::function<util::SimTime()>;

  explicit Tracer(NowFn now);
  /// Convenience over a util::Clock (which must outlive the tracer).
  explicit Tracer(const util::Clock& clock);

  /// RAII handle: the span ends when end() is called or the handle is
  /// destroyed, whichever comes first.  Ending a span that still has open
  /// children ends the children too (at the same instant).
  class Span {
   public:
    Span(Span&& other) noexcept;
    Span& operator=(Span&& other) noexcept;
    Span(const Span&) = delete;
    Span& operator=(const Span&) = delete;
    ~Span();

    void end();

   private:
    friend class Tracer;
    Span(Tracer* tracer, SpanRecord* node) : tracer_(tracer), node_(node) {}

    Tracer* tracer_ = nullptr;
    SpanRecord* node_ = nullptr;  // null once ended
  };

  /// Opens a span as a child of the innermost open span (or as a new root).
  Span span(std::string name);

  /// Completed root spans, oldest first; clears the tracer's record.
  /// Roots still open are not returned.
  std::vector<SpanRecord> take_finished();

  std::size_t open_spans() const { return stack_.size(); }

 private:
  void end_node(SpanRecord* node);

  NowFn now_;
  std::vector<SpanRecord> finished_;
  std::unique_ptr<SpanRecord> root_;   // in-progress root (stable address)
  std::vector<SpanRecord*> stack_;     // open spans, outermost first
};

}  // namespace globe::obs
