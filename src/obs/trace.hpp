// Nested trace spans over a pluggable clock, with cross-process context.
//
// A Tracer timestamps spans through a caller-supplied "now" function, so
// the same instrumented code records *virtual* SimNet time when driven by
// a simulated flow (`[&] { return flow->now(); }`) and wall-clock time in
// the live TCP examples (`[] { return RealClock{}.now(); }`).  Spans nest
// strictly: a span opened while another is in progress becomes its child,
// which is exactly the shape of the proxy's Fig. 3 pipeline — one "fetch"
// root with resolve / locate / key_check / identity / integrity_verify /
// element_verify children (the paper's Fig. 4 numerator is the sum of the
// last four).
//
// Distributed tracing (DESIGN.md §10): every span carries a 64-bit span id
// and belongs to a trace identified by a 128-bit trace id.  The innermost
// open span of the calling thread is published as a thread-local
// TraceContext; the RPC layer injects it into request framing and the
// server-side dispatcher adopts it, so a proxy fetch that fans out to the
// naming resolver, the location tree and an object replica produces span
// fragments that all share ONE trace id.  A TraceSink (obs/collector.hpp)
// receives completed root fragments and stitches them back into a single
// cross-host tree.
//
// A Tracer belongs to one logical flow, like net::Transport: it is NOT
// thread-safe, and a flow must stay on one thread while it has open spans
// (the propagated context is thread-local).  Use one tracer per concurrent
// fetch.  Tracers sharing a thread must nest strictly (open/close like a
// stack), which the RAII Span handles guarantee in practice.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "util/clock.hpp"
#include "util/serial.hpp"
#include "util/bounds_annotations.hpp"

namespace globe::obs {

/// Propagated trace context: which trace the caller is inside, and which of
/// its spans is the parent of whatever the callee opens next.  The wire
/// form rides an optional RPC framing header (docs/PROTOCOL.md).
struct TraceContext {
  std::uint64_t trace_hi = 0;    // 128-bit trace id, high half
  std::uint64_t trace_lo = 0;    // 128-bit trace id, low half
  std::uint64_t parent_span = 0; // innermost open span of the caller (0 = root)
  bool sampled = true;           // cleared → downstream records nothing

  /// A context is valid when it names a trace (the all-zero id is "none").
  bool valid() const { return (trace_hi | trace_lo) != 0; }

  /// 32 lowercase hex chars (the usual W3C-style rendering).
  std::string trace_id() const;

  /// Wire form: u64 hi, u64 lo, u64 parent, u8 flags (bit 0 = sampled).
  static constexpr std::size_t kWireSize = 25;
  void encode(util::Writer& w) const;
  /// Throws util::SerialError on truncation (Reader bounds checking).
  static TraceContext decode(util::Reader& r);
};

/// Context of the innermost open span on this thread (invalid when none).
/// This is what RpcClient injects into outgoing request framing.
TraceContext current_trace_context();

/// Fresh span id (never 0).  Ids come from an atomic counter passed through
/// a splitmix64 mix, so they are unique within a process; the counter starts
/// at a per-process random seed, so independently started processes produce
/// distinct sequences (collision across processes is ~birthday-bound on 64
/// bits, not guaranteed-impossible).
std::uint64_t next_span_id();

/// One completed span: half-open interval [start, start + duration) with
/// completed children, in start order.
struct SpanRecord {
  std::string name;
  util::SimTime start = 0;
  util::SimDuration duration = 0;
  std::uint64_t span_id = 0;  // unique within the trace
  std::string host;           // recording side's label (roots only; "" = unset)
  std::vector<SpanRecord> children;
};

/// Sum of the durations of every span named `name` in the tree (the tree
/// may contain several, e.g. one `key_check` per replica attempted).
util::SimDuration span_total(const SpanRecord& root, std::string_view name);

/// First span named `name` in depth-first order, or nullptr.
const SpanRecord* find_span(const SpanRecord& root, std::string_view name);

/// Every span named `name`, depth-first.  Pointers are into `root`.
std::vector<const SpanRecord*> find_all_spans(const SpanRecord& root,
                                              std::string_view name);

/// Total time spent on the far side of an RPC within this subtree: the sum
/// of the durations of *maximal* spans whose name starts with `prefix`
/// (recursion stops at a match, so a server span that itself contains
/// nested RPC spans is counted once).  Server-side RPC spans are named
/// "rpc:<service>/<method>" by the dispatcher.
util::SimDuration remote_span_total(const SpanRecord& root,
                                    std::string_view prefix = "rpc:");

/// One completed span tree plus the trace coordinates needed to stitch it
/// under its remote parent.
struct TraceFragment {
  std::uint64_t trace_hi = 0;
  std::uint64_t trace_lo = 0;
  std::uint64_t parent_span = 0;  // 0 = this fragment is the trace root
  bool sampled = true;
  SpanRecord span;
};

/// Receives completed root fragments.  Implementations must be thread-safe
/// (fragments arrive from every flow); obs/collector.hpp provides the
/// session-wide stitching implementation.
class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void record(TraceFragment fragment) = 0;
};

class Tracer {
 public:
  using NowFn = std::function<util::SimTime()>;

  explicit Tracer(NowFn now);
  /// Convenience over a util::Clock (which must outlive the tracer).
  explicit Tracer(const util::Clock& clock);

  /// Completed root spans are also delivered to `sink` (in addition to
  /// take_finished()).  Pass nullptr to detach.  The sink must outlive the
  /// tracer's last span.
  void set_sink(TraceSink* sink) { sink_ = sink; }

  /// Label stamped on root spans (e.g. "proxy", an object server's name).
  void set_host(std::string host) { host_ = std::move(host); }

  /// Adopts a remote caller's context: root spans opened after this join
  /// the caller's trace as children of `ctx.parent_span` instead of
  /// starting a fresh trace.  This is what the server-side RPC dispatcher
  /// calls with the context extracted from request framing.
  void adopt(const TraceContext& ctx) { inherited_ = ctx; }

  /// RAII handle: the span ends when end() is called or the handle is
  /// destroyed, whichever comes first.  Ending a span that still has open
  /// children ends the children too (at the same instant).
  class Span {
   public:
    Span(Span&& other) noexcept;
    Span& operator=(Span&& other) noexcept;
    Span(const Span&) = delete;
    Span& operator=(const Span&) = delete;
    ~Span();

    void end();

   private:
    friend class Tracer;
    Span(Tracer* tracer, SpanRecord* node) : tracer_(tracer), node_(node) {}

    Tracer* tracer_ = nullptr;
    SpanRecord* node_ = nullptr;  // null once ended
  };

  /// Opens a span as a child of the innermost open span (or as a new root).
  Span span(std::string name);

  /// Completed root spans, oldest first; clears the tracer's record.
  /// Roots still open are not returned.
  std::vector<SpanRecord> take_finished();

  std::size_t open_spans() const { return stack_.size(); }

  /// Trace id of the current (or most recently completed) root span; 0/0
  /// before the first span opens.
  std::uint64_t trace_hi() const { return trace_hi_; }
  std::uint64_t trace_lo() const { return trace_lo_; }

 private:
  void end_node(SpanRecord* node);
  void publish_current();

  NowFn now_;
  TraceSink* sink_ = nullptr;
  std::string host_;
  TraceContext inherited_;             // adopted remote context (may be invalid)
  std::uint64_t trace_hi_ = 0, trace_lo_ = 0;
  std::uint64_t root_parent_ = 0;      // parent span id of the open root
  bool sampled_ = true;
  TraceContext enclosing_;             // thread context saved at root open
  std::vector<SpanRecord> finished_ GLOBE_BOUNDED;
  std::unique_ptr<SpanRecord> root_;   // in-progress root (stable address)
  std::vector<SpanRecord*> stack_ GLOBE_BOUNDED;     // open spans, outermost first
};

}  // namespace globe::obs
