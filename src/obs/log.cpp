#include "obs/log.hpp"

#include <sstream>

#include "obs/export.hpp"
#include "util/log.hpp"

namespace globe::obs {

namespace {

util::LogLevel to_util_level(EventLevel level) {
  switch (level) {
    case EventLevel::kDebug: return util::LogLevel::kDebug;
    case EventLevel::kInfo: return util::LogLevel::kInfo;
    case EventLevel::kWarn: return util::LogLevel::kWarn;
    case EventLevel::kError: return util::LogLevel::kError;
  }
  return util::LogLevel::kInfo;
}

}  // namespace

const char* event_level_name(EventLevel level) {
  switch (level) {
    case EventLevel::kDebug: return "debug";
    case EventLevel::kInfo: return "info";
    case EventLevel::kWarn: return "warn";
    case EventLevel::kError: return "error";
  }
  return "info";
}

std::string EventRecord::to_json() const {
  std::ostringstream os;
  os << "{\"t\":" << time << ",\"level\":\"" << event_level_name(level)
     << "\",\"component\":\"" << json_escape(component) << "\",\"event\":\""
     << json_escape(event) << '"';
  if (!detail.empty()) os << ",\"detail\":\"" << json_escape(detail) << '"';
  if ((trace_hi | trace_lo) != 0) {
    os << ",\"trace_id\":\""
       << TraceContext{trace_hi, trace_lo, 0, true}.trace_id()
       << "\",\"span_id\":" << span_id;
  }
  os << '}';
  return os.str();
}

EventLog::EventLog(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {}

void EventLog::emit(EventLevel level, std::string component, std::string event,
                    std::string detail, util::SimTime time) {
  // Early-out before building the record or mirroring, so suppressed events
  // cost one lock round-trip and nothing else (the "cheap below the minimum
  // level" promise in the header).
  {
    util::LockGuard lock(mutex_);
    if (level < min_level_) return;
  }

  EventRecord record;
  record.level = level;
  record.time = time;
  record.component = std::move(component);
  record.event = std::move(event);
  record.detail = std::move(detail);
  TraceContext ctx = current_trace_context();
  record.trace_hi = ctx.trace_hi;
  record.trace_lo = ctx.trace_lo;
  record.span_id = ctx.parent_span;

  // Mirror to the plain stderr logger (which applies its own threshold), so
  // examples narrating the protocol see structured events too.
  util::logf(to_util_level(level), record.component,
             record.event + (record.detail.empty() ? "" : ": " + record.detail));

  util::LockGuard lock(mutex_);
  if (level < min_level_) return;
  ++emitted_;
  ring_.push_back(std::move(record));
  while (ring_.size() > capacity_) ring_.pop_front();
}

void EventLog::set_min_level(EventLevel level) {
  util::LockGuard lock(mutex_);
  min_level_ = level;
}

EventLevel EventLog::min_level() const {
  util::LockGuard lock(mutex_);
  return min_level_;
}

std::vector<EventRecord> EventLog::recent(std::size_t max) const {
  util::LockGuard lock(mutex_);
  std::vector<EventRecord> out;
  for (auto it = ring_.rbegin(); it != ring_.rend() && out.size() < max; ++it) {
    out.push_back(*it);
  }
  return out;
}

std::vector<EventRecord> EventLog::for_trace(std::uint64_t trace_hi,
                                             std::uint64_t trace_lo) const {
  util::LockGuard lock(mutex_);
  std::vector<EventRecord> out;
  for (const EventRecord& record : ring_) {
    if (record.trace_hi == trace_hi && record.trace_lo == trace_lo) {
      out.push_back(record);
    }
  }
  return out;
}

std::size_t EventLog::size() const {
  util::LockGuard lock(mutex_);
  return ring_.size();
}

std::uint64_t EventLog::emitted() const {
  util::LockGuard lock(mutex_);
  return emitted_;
}

void EventLog::clear() {
  util::LockGuard lock(mutex_);
  ring_.clear();
  emitted_ = 0;
}

EventLog& global_event_log() {
  static EventLog log(1024);
  return log;
}

}  // namespace globe::obs
