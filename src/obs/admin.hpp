// Live telemetry endpoints: /metrics, /healthz, /tracez (DESIGN.md §10).
//
// A small HTTP admin surface mountable on any simulated host (the GlobeDoc
// proxy, an object server, the static baseline server) next to its real
// service port.  It reuses the existing HTTP stack — http::parse_request on
// the way in, http::HttpResponse on the way out — so the same handler runs
// over SimNet message framing and over a live TCP socket loop.
//
//   GET /metrics          Prometheus-style flat text of the registry.
//   GET /healthz          JSON readiness: one entry per registered check
//                         (naming reachable, location reachable, replica
//                         channel up, ...).  200 when all pass, 503 with
//                         the failing checks named otherwise.
//   GET /tracez[?min_ms=N]  Recent sampled traces from the collector as
//                         JSON, newest first, filterable by minimum root
//                         duration.
//   GET /federate         Merged cluster snapshot from the telemetry
//                         aggregator in the same text exposition as
//                         /metrics (per-node series + cluster aggregates +
//                         derived :rate1m/:p99_5m), prefixed by one
//                         "# node ..." comment per scrape target so stale
//                         nodes are visible.  404 unless an aggregator is
//                         configured.
//   GET /alertz           SLO burn-rate alerts as JSON (firing / pending /
//                         resolved, with offending labels).  Each GET
//                         re-evaluates the specs against the aggregator's
//                         ring first.  404 unless an evaluator is
//                         configured.
//   GET /profilez[?fmt=folded][&n=N]
//                         Cost-profile self view (DESIGN.md §15): by
//                         default a table of the top-N probe stacks by
//                         inclusive CPU time (calls, cpu_ns, ns/call,
//                         wall_ns); with fmt=folded, flamegraph-compatible
//                         folded stacks ("frame;frame <self_cpu_ns>").
//   GET /replicaz[?state=S]
//                         Fleet consistency table from the auditor
//                         (DESIGN.md §16): one line per (replica, OID) with
//                         epoch, master epoch, lag, staleness, certificate
//                         horizon and the fresh/stale/diverged/... state,
//                         filterable to one state.  404 unless an auditor
//                         is configured.
//
// Security: the request — target, query string included — crossed the wire
// from an untrusted peer (DESIGN.md §9).  The query is parsed by a strict
// sanitizer (digits only, bounded length); malformed input yields a 400
// with a STATIC body, never an echo of what was sent.  Anything variable
// that does land in a response body (metric names, span names, host
// labels) goes through json_escape, and /tracez is served as
// application/json so a hostile span name cannot become markup.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "http/message.hpp"
#include "net/transport.hpp"
#include "obs/collector.hpp"
#include "obs/health.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/profile.hpp"
#include "util/bounds_annotations.hpp"
#include "util/mutex.hpp"
#include "util/taint_annotations.hpp"

namespace globe::obs {

class TelemetryAggregator;   // obs/telemetry.hpp
class SloEvaluator;          // obs/slo.hpp
class ConsistencyAuditor;    // obs/consistency.hpp

/// Probe helper: true reachability of a peer endpoint.  Sends a minimal
/// no-op frame and reports UNAVAILABLE only when the transport does (link
/// down / nothing bound); any in-protocol error reply still proves the peer
/// is alive and reachable.
util::Status reachability_probe(net::ServerContext& ctx,
                                const net::Endpoint& ep);

struct AdminConfig {
  /// Service label reported by /healthz (e.g. "proxy", "object-server").
  std::string service = "globedoc";
  /// Sources served; null fields fall back to the process-wide defaults.
  MetricsRegistry* registry = nullptr;
  TraceCollector* collector = nullptr;
  EventLog* events = nullptr;
  /// Cost-profile source for /profilez; also published into `registry` as
  /// profile.* counters on every /metrics scrape, so the fleet view
  /// (/federate) carries per-node crypto cost.  Null = the process-wide
  /// global_profile_registry().
  ProfileRegistry* profile = nullptr;
  /// Cluster-plane sources; these have no process-wide default — leaving
  /// any null simply 404s its endpoint (/federate, /alertz, /replicaz).
  TelemetryAggregator* aggregator = nullptr;
  SloEvaluator* slo = nullptr;
  ConsistencyAuditor* auditor = nullptr;
};

class AdminHttpServer {
 public:
  explicit AdminHttpServer(AdminConfig config = AdminConfig());

  /// Registers a named readiness check, evaluated on every /healthz.
  void add_health_check(std::string name, HealthProbe probe)
      GLOBE_EXCLUDES(mutex_);

  /// Serves one parsed request.  The request came off the wire, so every
  /// field of it is untrusted input.
  http::HttpResponse handle(net::ServerContext& ctx,
                            GLOBE_UNTRUSTED const http::HttpRequest& request)
      GLOBE_EXCLUDES(mutex_);

  /// MessageHandler adapter (serialized HTTP request in, serialized HTTP
  /// response out) for binding to a SimNet/TCP port.
  net::MessageHandler handler();

 private:
  http::HttpResponse serve_metrics();
  http::HttpResponse serve_healthz(net::ServerContext& ctx)
      GLOBE_EXCLUDES(mutex_);
  http::HttpResponse serve_tracez(const std::string& query);
  http::HttpResponse serve_profilez(const std::string& query);
  http::HttpResponse serve_federate();
  http::HttpResponse serve_alertz(net::ServerContext& ctx);
  http::HttpResponse serve_replicaz(const std::string& query);

  AdminConfig config_;
  mutable util::Mutex mutex_;
  std::vector<std::pair<std::string, HealthProbe>> checks_
      GLOBE_BOUNDED GLOBE_GUARDED_BY(mutex_);
};

}  // namespace globe::obs
