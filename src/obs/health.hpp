// Readiness-probe vocabulary shared by the admin surface (obs/admin.hpp)
// and the components that offer probes.  Header-only and free of the HTTP
// stack, so globe_http components can hand out probes without a dependency
// cycle (globe_obs_admin links globe_http, not the other way around).
#pragma once

#include <functional>

#include "net/transport.hpp"
#include "util/status.hpp"

namespace globe::obs {

/// One readiness probe.  Returns OK when the subsystem is usable; the
/// status message of a failure is surfaced in /healthz.  Probes may use
/// `ctx.transport()` for nested reachability calls and must be thread-safe.
using HealthProbe = std::function<util::Status(net::ServerContext& ctx)>;

}  // namespace globe::obs
