// Fleet consistency observatory (DESIGN.md §16): per-document epochs,
// staleness and divergence auditing.
//
// Every hosted document has a *state epoch* — the version stamped into its
// integrity certificate by the master's signing key, bumped on every
// re-sign — and a *content digest* — the Merkle root over the serialized
// elements the replica actually stores, recomputed at report time so a
// byte flipped after installation is visible, not just a stale pull.  A
// TelemetryNode serves its server's per-OID (epoch, digest, expiry
// horizon) triples as `telemetry/consistency`, riding the same RPC wire
// and trace propagation as a metrics scrape.
//
// A ConsistencyAuditor polls the master plus every replica and classifies
// each (replica, OID) pair:
//   * fresh      epoch matches the master AND the digest matches;
//   * stale      epoch behind the master but the certificate window is
//                still open — the replica serves verifiably-signed old
//                state, which the paper's model explicitly permits;
//   * expired    epoch behind AND the certificate window has closed;
//   * diverged   digest mismatch at an equal-or-ahead epoch — corruption
//                or tampering, never a mere propagation delay;
//   * missing    the master serves the document, the replica does not;
//   * unreachable the replica answered nothing usable this round.
//
// Security note: reports cross the wire from possibly-malicious replicas.
// decode_consistency() is the sanitizing gate — strict lengths, hard doc
// cap, kProtocol on any violation; a malformed report marks the sender
// unreachable and counts a telemetry.scrape_errors, never poisoning the
// fleet view.  A *well-formed lie* (epoch ahead of the master's) is
// classified diverged and counted in replication.audit.forged: a replica
// can deny its own telemetry but cannot claim to be fresher than the
// signing authority.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "net/transport.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/bounds_annotations.hpp"
#include "util/bytes.hpp"
#include "util/mutex.hpp"
#include "util/serial.hpp"
#include "util/taint_annotations.hpp"
#include "util/thread_annotations.hpp"

namespace globe::obs {

/// Wire caps for a consistency report: one version byte, then at most
/// kMaxReportDocs fixed-size document records.
inline constexpr std::uint8_t kConsistencyVersion = 1;
inline constexpr std::size_t kMaxReportDocs = 4096;
inline constexpr std::size_t kConsistencyDigestSize = 20;  // SHA-1 Merkle root

/// One hosted document's consistency coordinates as reported by a node.
struct DocConsistency {
  util::Bytes oid;     // exactly 20 raw bytes (self-certifying OID)
  std::uint64_t epoch = 0;  // integrity-certificate version at install time
  util::Bytes digest;  // exactly kConsistencyDigestSize bytes: Merkle root
                       // over the stored serialized elements, name order
  util::SimTime earliest_expiry = 0;  // first certificate-entry expiry
};

/// Everything one node reports about the documents it hosts.
struct ConsistencyReport {
  std::vector<DocConsistency> docs;
};

void encode_consistency(util::Writer& w, const ConsistencyReport& report);
/// Sanitizer: the only path wire bytes take into a ConsistencyReport.
/// Rejects truncation, unknown versions, oversized doc counts and
/// wrong-length OID/digest fields with kProtocol.
GLOBE_SANITIZER util::Result<ConsistencyReport> decode_consistency(
    GLOBE_UNTRUSTED util::BytesView data);

/// One fleet member the auditor polls for consistency reports.
struct AuditTarget {
  std::string node;  // unique node label, e.g. "replica-3"
  net::Endpoint endpoint;
};

enum class ReplicaConsistency {
  kFresh,
  kStale,
  kDiverged,
  kExpired,
  kMissing,
  kUnreachable,
};
const char* replica_consistency_name(ReplicaConsistency state);

/// One row of the /replicaz table: a (replica, OID) pair as of the latest
/// audit round.  Every field is derived by the auditor from sanitized
/// reports — safe to render verbatim on the admin plane.
struct ReplicaRow {
  std::string replica;       // target node label from the auditor's config
  std::string oid_hex;       // hex rendering of the 20-byte OID
  std::uint64_t epoch = 0;          // replica's reported epoch
  std::uint64_t master_epoch = 0;   // authoritative epoch at the master
  double staleness_ms = 0;          // time the master has been ahead
  double expiry_horizon_s = 0;      // replica cert window remaining (<=0: shut)
  ReplicaConsistency state = ReplicaConsistency::kUnreachable;
};

/// Cross-checks replica consistency reports against the master's.
///
/// Per audit round the auditor pulls the master's report first (the
/// authoritative epoch/digest per OID), then every replica's, and exports:
///   * replication.staleness_ms{replica=}        histogram of how far
///     behind non-fresh replicas are (time since the master's epoch moved);
///   * replication.stale_replicas /
///     replication.diverged_replicas             fleet gauges (replicas
///     with >=1 stale/behind doc, resp. >=1 diverged doc);
///   * replication.cert_expiry_horizon_s{replica=}  worst-case remaining
///     certificate validity across the replica's docs;
///   * replication.audit.checks{replica=,state=} counter of per-doc
///     classifications — the staleness burn-rate SLO's good/total source;
///   * replication.audit.forged{replica=}        well-formed lies (epoch
///     ahead of the master);
///   * telemetry.scrape_errors{node=}            unreachable targets and
///     reports rejected at the decode gate.
class ConsistencyAuditor {
 public:
  struct Config {
    /// Registry for the auditor's replication.* series; nullptr gives the
    /// auditor a private registry (tagged node=/role= auditor).
    MetricsRegistry* self_registry = nullptr;
    /// Audit spans land here; nullptr = obs::global_trace_collector().
    TraceSink* trace_sink = nullptr;
    std::string node = "auditor";
  };

  ConsistencyAuditor();
  explicit ConsistencyAuditor(Config config);

  void set_master(AuditTarget master) GLOBE_EXCLUDES(mutex_);
  void add_replica(AuditTarget replica) GLOBE_EXCLUDES(mutex_);
  std::size_t replica_count() const GLOBE_EXCLUDES(mutex_);

  /// One audit round over `transport` at transport.now(): fetches the
  /// master's report, then each replica's, classifies every (replica, OID)
  /// pair and updates the exported series plus the /replicaz row table.
  /// Blocking: one RPC per fleet target.  Targets are snapshotted under
  /// the lock; the RPCs themselves run with no lock held.
  GLOBE_BLOCKING void audit_round(net::Transport& transport)
      GLOBE_EXCLUDES(mutex_);

  /// Latest round's rows, replica-major then OID order.
  std::vector<ReplicaRow> rows() const GLOBE_EXCLUDES(mutex_);

  /// True when the latest round reached the master and saw every replica
  /// fresh on every master document (and there was something to check).
  bool converged() const GLOBE_EXCLUDES(mutex_);

  std::uint64_t rounds() const GLOBE_EXCLUDES(mutex_);
  std::uint64_t master_epoch_sum() const GLOBE_EXCLUDES(mutex_);
  MetricsRegistry& self_registry() { return *self_registry_; }

 private:
  /// Authoritative per-document state from the master's latest report.
  struct DocState {
    std::uint64_t epoch = 0;
    util::Bytes digest;
    util::SimTime epoch_since = 0;  // when this epoch was first observed
  };

  /// Fetch + sanitize one target's report; nullopt records the error.
  std::optional<ConsistencyReport> fetch_report(net::Transport& transport,
                                                Tracer& tracer,
                                                const AuditTarget& target,
                                                std::string* error);

  Config config_;
  MetricsRegistry* self_registry_;
  std::unique_ptr<MetricsRegistry> owned_registry_;
  Counter* audit_rounds_;
  Gauge* stale_replicas_;
  Gauge* diverged_replicas_;

  mutable util::Mutex mutex_;
  std::optional<AuditTarget> master_ GLOBE_GUARDED_BY(mutex_);
  std::vector<AuditTarget> replicas_ GLOBE_BOUNDED GLOBE_GUARDED_BY(mutex_);
  // Keyed by raw OID bytes; rebuilt from the master's report every round
  // (epoch_since carried over while the epoch holds still), so it is
  // bounded by the decode gate's kMaxReportDocs cap.
  std::map<util::Bytes, DocState> docs_ GLOBE_BOUNDED GLOBE_GUARDED_BY(mutex_);
  std::vector<ReplicaRow> rows_ GLOBE_BOUNDED GLOBE_GUARDED_BY(mutex_);
  // When each currently-behind (replica, OID) pair first fell behind the
  // master; rebuilt every round (entries for recovered pairs drop out), so
  // it never outgrows replicas x master docs.
  std::map<std::pair<std::string, util::Bytes>, util::SimTime> stale_since_
      GLOBE_BOUNDED GLOBE_GUARDED_BY(mutex_);
  bool master_reachable_ GLOBE_GUARDED_BY(mutex_) = false;
  std::uint64_t round_count_ GLOBE_GUARDED_BY(mutex_) = 0;
};

}  // namespace globe::obs
