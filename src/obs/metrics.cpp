#include "obs/metrics.hpp"

#include <algorithm>
#include <stdexcept>

#include "obs/trace.hpp"

namespace globe::obs {

namespace {

Labels normalize(Labels labels) {
  std::sort(labels.begin(), labels.end());
  return labels;
}

/// Series labels + registry defaults for keys the series doesn't set,
/// re-sorted so snapshot ordering stays canonical.
Labels with_defaults(const Labels& labels, const Labels& defaults) {
  if (defaults.empty()) return labels;
  Labels out = labels;
  for (const auto& def : defaults) {
    bool present = false;
    for (const auto& have : labels) {
      if (have.first == def.first) {
        present = true;
        break;
      }
    }
    if (!present) out.push_back(def);
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)),
      counts_(bounds_.size() + 1),
      exemplars_(bounds_.size() + 1) {
  if (!std::is_sorted(bounds_.begin(), bounds_.end()) ||
      std::adjacent_find(bounds_.begin(), bounds_.end()) != bounds_.end()) {
    throw std::invalid_argument("histogram bounds must be strictly increasing");
  }
}

void Histogram::observe(double v) {
  std::size_t i = static_cast<std::size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), v) - bounds_.begin());
  counts_[i].fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
  TraceContext ctx = current_trace_context();
  if (ctx.valid() && ctx.sampled) {
    exemplars_[i].hi.store(ctx.trace_hi, std::memory_order_relaxed);
    exemplars_[i].lo.store(ctx.trace_lo, std::memory_order_relaxed);
  }
}

std::uint64_t Histogram::count() const {
  std::uint64_t total = 0;
  for (const auto& c : counts_) total += c.load(std::memory_order_relaxed);
  return total;
}

std::vector<std::uint64_t> Histogram::bucket_counts() const {
  std::vector<std::uint64_t> out(counts_.size());
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    out[i] = counts_[i].load(std::memory_order_relaxed);
  }
  return out;
}

std::vector<Exemplar> Histogram::exemplars() const {
  std::vector<Exemplar> out(exemplars_.size());
  for (std::size_t i = 0; i < exemplars_.size(); ++i) {
    out[i].trace_hi = exemplars_[i].hi.load(std::memory_order_relaxed);
    out[i].trace_lo = exemplars_[i].lo.load(std::memory_order_relaxed);
  }
  return out;
}

double bucket_quantile(const std::vector<double>& bounds,
                       const std::vector<std::uint64_t>& counts, double q) {
  q = std::clamp(q, 0.0, 1.0);
  std::uint64_t total = 0;
  for (std::uint64_t c : counts) total += c;
  if (total == 0) return 0;

  // Rank of the target observation (1-based, ceil so q=1 hits the last).
  std::uint64_t rank = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(q * static_cast<double>(total) + 0.5));
  rank = std::min(rank, total);

  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    if (counts[i] == 0) continue;
    if (seen + counts[i] < rank) {
      seen += counts[i];
      continue;
    }
    if (i >= bounds.size()) {
      // Overflow bucket: the histogram cannot resolve past the last bound.
      return bounds.empty() ? 0 : bounds.back();
    }
    double lo = i == 0 ? 0.0 : bounds[i - 1];
    double hi = bounds[i];
    double within = (static_cast<double>(rank - seen)) /
                    static_cast<double>(counts[i]);
    return lo + (hi - lo) * within;
  }
  return bounds.empty() ? 0 : bounds.back();  // unreachable
}

double Histogram::quantile(double q) const {
  return bucket_quantile(bounds_, bucket_counts(), q);
}

void Histogram::reset() {
  for (auto& c : counts_) c.store(0, std::memory_order_relaxed);
  for (auto& e : exemplars_) {
    e.hi.store(0, std::memory_order_relaxed);
    e.lo.store(0, std::memory_order_relaxed);
  }
  sum_.store(0.0, std::memory_order_relaxed);
}

bool merge_histogram_sample(MetricSample& into, const MetricSample& from) {
  if (into.kind != MetricSample::Kind::kHistogram ||
      from.kind != MetricSample::Kind::kHistogram) {
    return false;
  }
  if (into.bounds != from.bounds ||
      into.bucket_counts.size() != from.bucket_counts.size()) {
    return false;
  }
  for (std::size_t i = 0; i < into.bucket_counts.size(); ++i) {
    into.bucket_counts[i] += from.bucket_counts[i];
  }
  into.count += from.count;
  into.value += from.value;  // histogram sum
  if (!from.exemplars.empty()) {
    if (into.exemplars.empty()) into.exemplars.resize(into.bucket_counts.size());
    for (std::size_t i = 0;
         i < from.exemplars.size() && i < into.exemplars.size(); ++i) {
      if (from.exemplars[i].valid()) into.exemplars[i] = from.exemplars[i];
    }
  }
  into.p50 = bucket_quantile(into.bounds, into.bucket_counts, 0.50);
  into.p90 = bucket_quantile(into.bounds, into.bucket_counts, 0.90);
  into.p99 = bucket_quantile(into.bounds, into.bucket_counts, 0.99);
  return true;
}

Counter& MetricsRegistry::counter(const std::string& name, Labels labels) {
  Key key{name, normalize(std::move(labels))};
  util::LockGuard lock(mutex_);
  auto& slot = counters_[std::move(key)];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name, Labels labels) {
  Key key{name, normalize(std::move(labels))};
  util::LockGuard lock(mutex_);
  auto& slot = gauges_[std::move(key)];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      std::vector<double> bounds, Labels labels) {
  Key key{name, normalize(std::move(labels))};
  util::LockGuard lock(mutex_);
  auto& slot = histograms_[std::move(key)];
  if (!slot) slot = std::make_unique<Histogram>(std::move(bounds));
  return *slot;
}

void MetricsRegistry::set_default_labels(Labels labels) {
  util::LockGuard lock(mutex_);
  default_labels_ = normalize(std::move(labels));
}

Labels MetricsRegistry::default_labels() const {
  util::LockGuard lock(mutex_);
  return default_labels_;
}

Snapshot MetricsRegistry::snapshot() const {
  util::LockGuard lock(mutex_);
  Snapshot snap;
  snap.samples.reserve(counters_.size() + gauges_.size() + histograms_.size());
  for (const auto& [key, counter] : counters_) {
    MetricSample s;
    s.name = key.name;
    s.labels = with_defaults(key.labels, default_labels_);
    s.kind = MetricSample::Kind::kCounter;
    s.value = static_cast<double>(counter->value());
    snap.samples.push_back(std::move(s));
  }
  for (const auto& [key, gauge] : gauges_) {
    MetricSample s;
    s.name = key.name;
    s.labels = with_defaults(key.labels, default_labels_);
    s.kind = MetricSample::Kind::kGauge;
    s.value = gauge->value();
    snap.samples.push_back(std::move(s));
  }
  for (const auto& [key, histogram] : histograms_) {
    MetricSample s;
    s.name = key.name;
    s.labels = with_defaults(key.labels, default_labels_);
    s.kind = MetricSample::Kind::kHistogram;
    s.value = histogram->sum();
    s.bounds = histogram->bounds();
    s.bucket_counts = histogram->bucket_counts();
    s.exemplars = histogram->exemplars();
    s.count = histogram->count();
    s.p50 = histogram->quantile(0.50);
    s.p90 = histogram->quantile(0.90);
    s.p99 = histogram->quantile(0.99);
    snap.samples.push_back(std::move(s));
  }
  std::sort(snap.samples.begin(), snap.samples.end(),
            [](const MetricSample& a, const MetricSample& b) {
              return a.name != b.name ? a.name < b.name : a.labels < b.labels;
            });
  return snap;
}

void MetricsRegistry::reset() {
  util::LockGuard lock(mutex_);
  for (auto& [key, counter] : counters_) counter->reset();
  for (auto& [key, gauge] : gauges_) gauge->set(0);
  for (auto& [key, histogram] : histograms_) histogram->reset();
}

MetricsRegistry& global_registry() {
  static MetricsRegistry* registry = new MetricsRegistry();  // never destroyed
  return *registry;
}

}  // namespace globe::obs
