// Exporters: turn a registry snapshot (or a span tree) into flat text for
// humans or JSON for the BENCH_*.json artifacts.
//
// JSON shape of a snapshot:
//   [
//     {"name": "proxy.fetches", "labels": {"outcome": "ok"},
//      "kind": "counter", "value": 6},
//     {"name": "proxy.fetch_ms", "labels": {}, "kind": "histogram",
//      "sum": 12.5, "count": 6, "p50": ..., "p90": ..., "p99": ...,
//      "buckets": [{"le": 1, "count": 2}, ..., {"le": "inf", "count": 0}]}
//   ]
// and of a bench artifact (write_bench_json):
//   {"bench": "<name>", "metrics": [ ...snapshot... ]}
//
// Numbers are printed with enough precision to round-trip; the output is
// deterministic (samples are sorted by name then labels) so artifacts can
// be checked in and diffed.
#pragma once

#include <string>
#include <string_view>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/status.hpp"

namespace globe::obs {

/// "name{k=v,...} value" lines, one metric per line; histograms get one
/// summary line plus indented bucket lines.
std::string to_text(const Snapshot& snapshot);

/// JSON array of metric samples (shape above).
std::string to_json(const Snapshot& snapshot);

/// JSON object for one span tree:
///   {"name": "fetch", "start_ns": 0, "duration_ns": 123, "children": [...]}
std::string to_json(const SpanRecord& span);

/// Escapes `s` for inclusion inside a JSON string literal (no quotes added).
std::string json_escape(std::string_view s);

/// Writes {"bench": bench_name, "metrics": <snapshot JSON>} to `path`.
util::Status write_bench_json(const std::string& path,
                              const std::string& bench_name,
                              const Snapshot& snapshot);

}  // namespace globe::obs
