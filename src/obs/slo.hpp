// Declarative SLOs over the federated telemetry plane (DESIGN.md §11).
//
// A SloSpec states an objective over metrics the TelemetryAggregator
// already collects — no instrumented component knows SLOs exist:
//
//   * availability: of the windowed delta of a counter family (all series
//     matching `filter`, summed across label values), the fraction matching
//     `good_labels` must be >= objective.  Evaluated per node= label value,
//     so the alert that fires names the offending node.
//   * latency: of the windowed observations of a histogram series, the
//     fraction at or under threshold_ms must be >= objective.  Evaluated
//     per label set (one proxy.fetch_ms series per replica), so a single
//     slow replica fires its own alert.
//
// Alerting is multi-window burn-rate (the SRE-workbook shape): the burn
// rate is bad_fraction / error_budget with error_budget = 1 - objective,
// so burn 1.0 consumes the budget exactly at the objective's pace.  An
// alert FIRES only when BOTH the short and the long window burn above
// `burn_threshold` — the long window proves the problem is sustained, the
// short window proves it is still happening (and lets the alert resolve
// quickly once the cause is fixed).  One window above, one below, is
// PENDING (arriving or draining); both below is RESOLVED.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/telemetry.hpp"
#include "util/clock.hpp"
#include "util/bounds_annotations.hpp"
#include "util/mutex.hpp"

namespace globe::obs {

struct SloSpec {
  enum class Type { kAvailability, kLatency };

  std::string name;     // alert/SLO identifier, e.g. "proxy-fetch-latency"
  Type type = Type::kAvailability;
  std::string metric;   // counter (availability) or histogram (latency)
  Labels filter;        // base labels a series must contain to participate

  // Availability only: labels marking the GOOD subset of `metric`.
  Labels good_labels;

  // Latency only: an observation is good when <= threshold_ms.  The
  // threshold should sit on a bucket boundary of the histogram — the
  // evaluator counts whole buckets and refuses to guess inside one (a
  // threshold between bounds is rounded UP to the next boundary).
  double threshold_ms = 0;

  double objective = 0.99;  // required good fraction, in (0, 1)

  util::SimDuration short_window = util::seconds(60);
  util::SimDuration long_window = util::seconds(300);
  double burn_threshold = 2.0;  // fire when both windows burn above this
};

enum class AlertStateKind { kPending, kFiring, kResolved };

const char* alert_state_name(AlertStateKind state);

/// One alert instance: a spec applied to one offending label set.
struct AlertState {
  std::string slo;      // SloSpec::name
  std::string metric;
  Labels labels;        // offending series labels (node=, replica=, ...)
  AlertStateKind state = AlertStateKind::kPending;
  double burn_short = 0;
  double burn_long = 0;
  util::SimTime since = 0;  // when the current state was entered
};

/// Evaluates every spec against the aggregator's ring.  Call evaluate()
/// after each scrape round (or on each /alertz hit); alerts() / to_json()
/// report the latest states.  Thread-safe.
class SloEvaluator {
 public:
  /// `self_registry` receives the evaluator's own slo.* series; nullptr
  /// means the aggregator's self registry.
  explicit SloEvaluator(const TelemetryAggregator& aggregator,
                        MetricsRegistry* self_registry = nullptr);

  /// Specs must reference cataloged metric names (docs/metrics.md) — the
  /// project lint's slo-catalog check enforces this on literals.
  void add_spec(SloSpec spec) GLOBE_EXCLUDES(mutex_);
  std::size_t spec_count() const GLOBE_EXCLUDES(mutex_);

  /// Recomputes every alert instance at time `now` (stamped into `since`
  /// on state transitions).  Instances appear on first non-clean
  /// evaluation and persist (as kResolved) afterwards, so /alertz shows
  /// the firing → resolved history of an incident.
  void evaluate(util::SimTime now) GLOBE_EXCLUDES(mutex_);

  std::vector<AlertState> alerts() const GLOBE_EXCLUDES(mutex_);

  /// /alertz body: {"alerts":[{slo, metric, labels, state, burn_short,
  /// burn_long, since_ns}, ...]} sorted by (slo, labels).
  std::string to_json() const GLOBE_EXCLUDES(mutex_);

 private:
  struct InstanceKey {
    std::string slo;
    Labels labels;
    bool operator<(const InstanceKey& o) const {
      return slo != o.slo ? slo < o.slo : labels < o.labels;
    }
  };

  /// Burn rates for one instance over both windows; nullopt = no data in
  /// a window (treated as burn 0: absence of traffic is not an outage —
  /// availability of zero requests is vacuously met).
  struct Burn {
    std::optional<double> short_burn;
    std::optional<double> long_burn;
  };

  Burn availability_burn(const SloSpec& spec, const Labels& instance) const;
  Burn latency_burn(const SloSpec& spec, const Labels& series) const;

  const TelemetryAggregator* aggregator_;
  MetricsRegistry* registry_;
  Counter* evaluations_;
  Gauge* firing_;
  Gauge* pending_;

  mutable util::Mutex mutex_;
  std::vector<SloSpec> specs_ GLOBE_BOUNDED GLOBE_GUARDED_BY(mutex_);
  std::map<InstanceKey, AlertState> instances_ GLOBE_BOUNDED GLOBE_GUARDED_BY(mutex_);
};

}  // namespace globe::obs
