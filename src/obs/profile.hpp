// Continuous cost profiling (DESIGN.md §15): scoped probes that attribute
// CPU time to code paths.
//
// Spans (obs/trace.hpp) measure wall time per request stage; this layer
// answers the complementary question — *where do the cycles go?* — at the
// granularity of crypto primitives and serving stages.  A CostProbe is a
// scoped RAII guard: on entry it reads a wall clock and the calling
// thread's CPU clock (CLOCK_THREAD_CPUTIME_ID), on exit it records the
// deltas plus one call into a ProfileRegistry, keyed by the *stack* of
// open probes on this thread, so `proxy.fetch;bind;rsa_verify` folds
// exactly like a flamegraph frame.
//
//   {
//     GLOBE_PROFILE_SCOPE("rsa_verify");
//     ... modular exponentiation ...
//   }   // <- records calls+1, wall/cpu deltas under the current stack
//
// Both clocks are pluggable per registry, so the deterministic simulator
// can substitute a virtual source (tests install a step clock and assert
// byte-identical folded output across runs); the default wall clock is the
// monotonic clock and the default CPU clock is per-thread CPU time where
// the platform has it, falling back to the wall clock elsewhere.
//
// Registry resolution: an explicit registry passed to CostProbe wins, else
// the thread's installed ProfileRegistryScope (how a per-node server
// attributes the crypto work done on its behalf to its own registry),
// else the process-wide global_profile_registry().
//
// Concurrency: the registry is sharded by stack hash; record() touches one
// shard mutex, snapshot() walks the shards one at a time.  Probe state
// (the open-probe stack) is thread-local and needs no lock.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "util/bounds_annotations.hpp"
#include "util/mutex.hpp"

namespace globe::obs {

class MetricsRegistry;

/// Accumulated cost of one probe stack.  `wall_ns`/`cpu_ns` are inclusive
/// (children counted); the `self_*` pair subtracts time spent under nested
/// probes, which is what a flamegraph frame's width must show — emitting
/// inclusive values per stack would double-count every parent.
struct ProbeStat {
  std::uint64_t calls = 0;
  std::uint64_t wall_ns = 0;
  std::uint64_t cpu_ns = 0;
  std::uint64_t self_wall_ns = 0;
  std::uint64_t self_cpu_ns = 0;
};

/// One stack's state at snapshot time.  `stack` is the folded path
/// ("proxy.fetch;bind;rsa_verify"); `leaf` is its last frame.
struct ProfileSample {
  std::string stack;
  std::string leaf;
  ProbeStat stat;
};

/// Point-in-time copy of a profile registry, ordered by stack.
struct ProfileSnapshot {
  std::vector<ProfileSample> samples;
};

class ProfileRegistry {
 public:
  using ClockFn = std::function<std::uint64_t()>;

  /// Bounds: probe stacks come from code literals, so cardinality is small
  /// in practice; the cap is a backstop against a probe label accidentally
  /// interpolating data.  Beyond it new stacks are dropped (counted).
  static constexpr std::size_t kShards = 8;
  static constexpr std::size_t kMaxStacksPerShard = 512;
  static constexpr std::size_t kMaxPublishedLeaves = 1024;

  ProfileRegistry();

  /// Replaces the wall/CPU time sources.  Call at setup, before probes are
  /// in flight — the functions themselves are read without a lock on the
  /// probe hot path.  Passing a null function keeps the current source.
  void set_clocks(ClockFn wall, ClockFn cpu);

  std::uint64_t wall_now() const { return wall_clock_(); }
  std::uint64_t cpu_now() const { return cpu_clock_(); }

  /// Folds `delta` into the stat for `stack` (the leaf is derived from the
  /// stack's last frame at snapshot time).  Called by ~CostProbe; rarely
  /// useful directly.
  void record(std::string_view stack, const ProbeStat& delta);

  ProfileSnapshot snapshot() const;

  /// Drops every recorded stack (bench scenarios reset between runs).
  void reset();

  /// Stacks rejected by the kMaxStacksPerShard backstop since construction.
  std::uint64_t dropped() const;

  /// Publishes per-leaf aggregates as counters into `registry`:
  /// `profile.cpu_ns{probe=<leaf>}`, `profile.wall_ns{probe=<leaf>}` and
  /// `profile.calls{probe=<leaf>}` (inclusive time; a leaf appearing under
  /// several stacks is summed).  Counters only move forward: each call
  /// publishes the delta since the previous one, so scraping through
  /// /metrics or the telemetry plane sees ordinary monotone series.
  void publish_to(MetricsRegistry& registry) GLOBE_EXCLUDES(publish_mutex_);

 private:
  struct Shard {
    mutable util::Mutex mutex;
    std::map<std::string, ProbeStat, std::less<>> stacks
        GLOBE_BOUNDED GLOBE_GUARDED_BY(mutex);
    std::uint64_t dropped GLOBE_GUARDED_BY(mutex) = 0;
  };

  Shard& shard_for(std::string_view stack);
  const Shard& shard_for(std::string_view stack) const;

  // Read lock-free on the probe hot path; replaced only at setup.
  ClockFn wall_clock_;
  ClockFn cpu_clock_;

  Shard shards_[kShards];

  // publish_to bookkeeping: last published value per leaf, so deltas keep
  // the target counters monotone.
  mutable util::Mutex publish_mutex_;
  std::map<std::string, ProbeStat> published_
      GLOBE_BOUNDED GLOBE_GUARDED_BY(publish_mutex_);
};

/// Process-wide default registry: probes land here unless a registry scope
/// or an explicit argument says otherwise.
ProfileRegistry& global_profile_registry();

/// Thread-scoped registry override.  A per-node server installs one at
/// handler entry so every probe fired on its behalf — crypto primitives
/// included — lands in that node's registry instead of the global one.
/// Nests: the previous scope is restored on destruction.  Constructing
/// with nullptr is a no-op override — the ambient scope (outer scope, or
/// the global registry) stays in effect — so a component with no
/// configured registry composes under a caller that installed one.
class ProfileRegistryScope {
 public:
  explicit ProfileRegistryScope(ProfileRegistry* registry);
  ~ProfileRegistryScope();

  ProfileRegistryScope(const ProfileRegistryScope&) = delete;
  ProfileRegistryScope& operator=(const ProfileRegistryScope&) = delete;

  /// The registry probes on this thread currently resolve to.
  static ProfileRegistry& current();

 private:
  ProfileRegistry* prev_;
};

/// Scoped cost probe.  `label` must outlive the probe — in practice it is
/// a string literal (GLOBE_PROFILE_SCOPE enforces that shape, and
/// tools/lint.py checks every such literal is cataloged in
/// docs/metrics.md).  Probes nested deeper than kMaxDepth are inert.
class CostProbe {
 public:
  static constexpr std::size_t kMaxDepth = 64;

  explicit CostProbe(const char* label, ProfileRegistry* registry = nullptr);
  ~CostProbe();

  CostProbe(const CostProbe&) = delete;
  CostProbe& operator=(const CostProbe&) = delete;

 private:
  ProfileRegistry* registry_;  // null = inert (depth overflow)
  const char* label_;
  std::uint64_t wall_start_ = 0;
  std::uint64_t cpu_start_ = 0;
};

/// Renders folded flamegraph stacks: one "frame;frame;frame <value>" line
/// per stack, sorted, value = self CPU nanoseconds.  Feed straight into
/// flamegraph.pl / speedscope.
std::string to_folded(const ProfileSnapshot& snapshot);

/// Renders the /profilez self-profile table: top `top_n` stacks by
/// inclusive cpu_ns with calls, ns/call and wall time.
std::string to_table(const ProfileSnapshot& snapshot, std::size_t top_n);

}  // namespace globe::obs

// Declares a scoped probe named after the source line.  The label literal
// becomes the flamegraph frame; keep it short, stable and cataloged.
#define GLOBE_PROFILE_CONCAT_(a, b) a##b
#define GLOBE_PROFILE_CONCAT(a, b) GLOBE_PROFILE_CONCAT_(a, b)
#define GLOBE_PROFILE_SCOPE(label)                                        \
  ::globe::obs::CostProbe GLOBE_PROFILE_CONCAT(globe_profile_probe_, \
                                               __LINE__)(label)
