#include "obs/telemetry.hpp"

#include <algorithm>
#include <bit>
#include <cmath>

#include "obs/collector.hpp"
#include "obs/profile.hpp"

namespace globe::obs {

using util::Bytes;
using util::BytesView;
using util::ErrorCode;
using util::Reader;
using util::Result;
using util::Writer;

namespace {

// Doubles ride the wire as their IEEE-754 bit pattern in a u64 — exact
// round-trip, no locale/precision surprises.
void put_f64(Writer& w, double v) { w.u64(std::bit_cast<std::uint64_t>(v)); }
double get_f64(Reader& r) { return std::bit_cast<double>(r.u64()); }

std::uint8_t kind_code(MetricSample::Kind kind) {
  switch (kind) {
    case MetricSample::Kind::kCounter: return 0;
    case MetricSample::Kind::kGauge: return 1;
    case MetricSample::Kind::kHistogram: return 2;
  }
  return 0;
}

/// Label pairs the aggregator owns: a scraped node cannot claim to be
/// someone else, so node=/role= on federated samples always come from the
/// aggregator's own target table, replacing whatever the snapshot carried.
void force_label(Labels& labels, const std::string& key,
                 const std::string& value) {
  for (auto& [k, v] : labels) {
    if (k == key) {
      v = value;
      return;
    }
  }
  labels.emplace_back(key, value);
  std::sort(labels.begin(), labels.end());
}

Labels strip_node_labels(const Labels& labels) {
  Labels out;
  out.reserve(labels.size());
  for (const auto& kv : labels) {
    if (kv.first != "node" && kv.first != "role") out.push_back(kv);
  }
  return out;
}

bool labels_contain(const Labels& haystack, const Labels& needles) {
  for (const auto& need : needles) {
    bool found = false;
    for (const auto& have : haystack) {
      if (have == need) {
        found = true;
        break;
      }
    }
    if (!found) return false;
  }
  return true;
}

}  // namespace

void encode_snapshot(Writer& w, const Snapshot& snapshot) {
  w.u8(kSnapshotVersion);
  w.u32(static_cast<std::uint32_t>(snapshot.samples.size()));
  for (const MetricSample& s : snapshot.samples) {
    w.u8(kind_code(s.kind));
    w.str(s.name);
    w.u8(static_cast<std::uint8_t>(s.labels.size()));
    for (const auto& [key, value] : s.labels) {
      w.str(key);
      w.str(value);
    }
    put_f64(w, s.value);
    if (s.kind != MetricSample::Kind::kHistogram) continue;
    w.u8(static_cast<std::uint8_t>(s.bounds.size()));
    for (double b : s.bounds) put_f64(w, b);
    // bucket_counts.size() == bounds.size() + 1 by construction; the
    // decoder re-derives it rather than trusting a second length field.
    for (std::uint64_t c : s.bucket_counts) w.u64(c);
    if (s.exemplars.empty()) {
      w.u8(0);
    } else {
      w.u8(1);
      for (const Exemplar& e : s.exemplars) {
        w.u64(e.trace_hi);
        w.u64(e.trace_lo);
      }
    }
  }
}

Result<Snapshot> decode_snapshot(BytesView data) {
  try {
    Reader r(data);
    std::uint8_t version = r.u8();
    if (version != kSnapshotVersion) {
      return Result<Snapshot>(ErrorCode::kProtocol,
                              "unsupported snapshot version " +
                                  std::to_string(version));
    }
    std::uint32_t n = util::checked_count(
        r.u32(), static_cast<std::uint32_t>(kMaxSeries));
    Snapshot snap;
    snap.samples.reserve(n);
    for (std::uint32_t i = 0; i < n; ++i) {
      MetricSample s;
      std::uint8_t kind = r.u8();
      switch (kind) {
        case 0: s.kind = MetricSample::Kind::kCounter; break;
        case 1: s.kind = MetricSample::Kind::kGauge; break;
        case 2: s.kind = MetricSample::Kind::kHistogram; break;
        default:
          return Result<Snapshot>(ErrorCode::kProtocol,
                                  "unknown sample kind " +
                                      std::to_string(kind));
      }
      s.name = r.str();
      if (s.name.empty()) {
        return Result<Snapshot>(ErrorCode::kProtocol, "empty metric name");
      }
      std::uint8_t labels = r.u8();
      if (labels > kMaxLabels) {
        return Result<Snapshot>(ErrorCode::kProtocol,
                                "sample claims " + std::to_string(labels) +
                                    " labels (cap " +
                                    std::to_string(kMaxLabels) + ")");
      }
      for (std::uint8_t l = 0; l < labels; ++l) {
        std::string key = r.str();
        std::string value = r.str();
        s.labels.emplace_back(std::move(key), std::move(value));
      }
      std::sort(s.labels.begin(), s.labels.end());
      s.value = get_f64(r);
      if (!std::isfinite(s.value)) {
        return Result<Snapshot>(ErrorCode::kProtocol,
                                "non-finite value for " + s.name);
      }
      if (s.kind == MetricSample::Kind::kHistogram) {
        std::uint32_t bounds = util::checked_count(
            r.u8(), static_cast<std::uint32_t>(kMaxBuckets - 1));
        s.bounds.reserve(bounds);
        for (std::uint32_t b = 0; b < bounds; ++b) {
          double bound = get_f64(r);
          if (!std::isfinite(bound) ||
              (!s.bounds.empty() && bound <= s.bounds.back())) {
            return Result<Snapshot>(
                ErrorCode::kProtocol,
                "histogram bounds not strictly increasing in " + s.name);
          }
          s.bounds.push_back(bound);
        }
        s.bucket_counts.resize(s.bounds.size() + 1);
        std::uint64_t total = 0;
        for (std::uint64_t& c : s.bucket_counts) {
          c = r.u64();
          if (c > UINT64_MAX - total) {
            return Result<Snapshot>(ErrorCode::kProtocol,
                                    "histogram count overflow in " + s.name);
          }
          total += c;
        }
        // Count and quantiles are DERIVED locally, never trusted: a lying
        // count cannot disagree with the buckets it ships.
        s.count = total;
        s.p50 = bucket_quantile(s.bounds, s.bucket_counts, 0.50);
        s.p90 = bucket_quantile(s.bounds, s.bucket_counts, 0.90);
        s.p99 = bucket_quantile(s.bounds, s.bucket_counts, 0.99);
        if (r.u8() != 0) {
          s.exemplars.resize(s.bucket_counts.size());
          for (Exemplar& e : s.exemplars) {
            e.trace_hi = r.u64();
            e.trace_lo = r.u64();
          }
        }
      }
      snap.samples.push_back(std::move(s));
    }
    r.expect_end();
    return snap;
  } catch (const util::SerialError& e) {
    return Result<Snapshot>(ErrorCode::kProtocol, e.what());
  }
}

TelemetryNode::TelemetryNode(MetricsRegistry& registry, std::string node,
                             std::string role, ProfileRegistry* profile)
    : registry_(&registry),
      profile_(profile),
      node_(std::move(node)),
      role_(std::move(role)) {
  registry_->set_default_labels({{"node", node_}, {"role", role_}});
}

void TelemetryNode::register_with(rpc::ServiceDispatcher& dispatcher) {
  MetricsRegistry* registry = registry_;
  ProfileRegistry* profile = profile_;
  std::string node = node_;
  std::string role = role_;
  dispatcher.register_method(
      rpc::kTelemetryService, kScrape,
      [registry, profile, node, role](net::ServerContext&, BytesView) {
        if (profile != nullptr) profile->publish_to(*registry);
        Writer w;
        w.str(node);
        w.str(role);
        encode_snapshot(w, registry->snapshot());
        return Result<Bytes>(w.take());
      });
  std::function<ConsistencyReport()> source = consistency_source_;
  dispatcher.register_method(
      rpc::kTelemetryService, kConsistency,
      [source, node](net::ServerContext&, BytesView) {
        if (!source) {
          return Result<Bytes>(ErrorCode::kNotFound,
                               "no consistency source on " + node);
        }
        Writer w;
        w.str(node);
        encode_consistency(w, source());
        return Result<Bytes>(w.take());
      });
}

TelemetryAggregator::TelemetryAggregator() : TelemetryAggregator(Config()) {}

TelemetryAggregator::TelemetryAggregator(Config config)
    : config_(std::move(config)) {
  if (config_.self_registry != nullptr) {
    self_registry_ = config_.self_registry;
  } else {
    owned_registry_ = std::make_unique<MetricsRegistry>();
    owned_registry_->set_default_labels(
        {{"node", config_.node}, {"role", "aggregator"}});
    self_registry_ = owned_registry_.get();
  }
  scrape_rounds_ = &self_registry_->counter("telemetry.scrape_rounds");
  nodes_fresh_ = &self_registry_->gauge("telemetry.nodes_fresh");
  nodes_stale_ = &self_registry_->gauge("telemetry.nodes_stale");
}

void TelemetryAggregator::add_target(ScrapeTarget target) {
  util::LockGuard lock(mutex_);
  NodeStatus status;
  status.node = target.node;
  status.role = target.role;
  status_.emplace(target.node, std::move(status));
  targets_.push_back(std::move(target));
}

std::size_t TelemetryAggregator::target_count() const {
  util::LockGuard lock(mutex_);
  return targets_.size();
}

void TelemetryAggregator::scrape_round(net::Transport& transport) {
  std::vector<ScrapeTarget> targets;
  {
    util::LockGuard lock(mutex_);
    targets = targets_;
  }

  Tracer tracer([&transport] { return transport.now(); });
  tracer.set_host(config_.node);
  tracer.set_sink(config_.trace_sink != nullptr ? config_.trace_sink
                                                : &global_trace_collector());
  Round round;
  round.time = transport.now();

  struct Outcome {
    bool ok = false;
    std::string error;
    Snapshot snapshot;
  };
  std::vector<Outcome> outcomes(targets.size());
  {
    auto round_span = tracer.span("telemetry.scrape_round");
    for (std::size_t i = 0; i < targets.size(); ++i) {
      const ScrapeTarget& target = targets[i];
      Outcome& out = outcomes[i];
      auto span = tracer.span("scrape:" + target.node);
      rpc::RpcClient client(transport, target.endpoint);
      Result<Bytes> reply =
          client.call(rpc::kTelemetryService, kScrape, BytesView());
      if (!reply.is_ok()) {
        out.error = reply.status().to_string();
        continue;
      }
      try {
        Reader r(*reply);
        std::string node = r.str();
        std::string role = r.str();
        if (node != target.node) {
          // A scraped endpoint answering with someone else's identity is a
          // misconfiguration or an impersonation attempt; either way its
          // data must not be filed under the claimed node.
          out.error = "identity mismatch: target " + target.node +
                      " answered as " + node;
          continue;
        }
        (void)role;  // advisory; the target table's role is authoritative
        BytesView body = BytesView(*reply).subspan(reply->size() - r.remaining());
        Result<Snapshot> snap = decode_snapshot(body);
        if (!snap.is_ok()) {
          out.error = snap.status().to_string();
          continue;
        }
        out.snapshot = std::move(*snap);
      } catch (const util::SerialError& e) {
        out.error = std::string("malformed scrape reply: ") + e.what();
        continue;
      }
      for (MetricSample& s : out.snapshot.samples) {
        force_label(s.labels, "node", target.node);
        force_label(s.labels, "role", target.role);
      }
      out.ok = true;
    }
  }

  std::size_t fresh = 0, stale = 0;
  {
    util::LockGuard lock(mutex_);
    for (std::size_t i = 0; i < targets.size(); ++i) {
      NodeStatus& status = status_[targets[i].node];
      status.node = targets[i].node;
      status.role = targets[i].role;
      if (outcomes[i].ok) {
        status.stale = false;
        status.scrapes_ok += 1;
        status.last_success = round.time;
        status.last_error.clear();
        round.per_node[targets[i].node] = std::move(outcomes[i].snapshot);
        ++fresh;
      } else {
        status.stale = true;
        status.scrapes_failed += 1;
        status.last_error = outcomes[i].error;
        ++stale;
      }
    }
    ring_.push_back(std::move(round));
    while (ring_.size() > config_.max_rounds) ring_.pop_front();
    round_count_ += 1;
  }

  // Self-telemetry outside the lock: metric handles are atomics.
  for (std::size_t i = 0; i < targets.size(); ++i) {
    if (!outcomes[i].ok) {
      self_registry_
          ->counter("telemetry.scrape_errors", {{"node", targets[i].node}})
          .inc();
    }
  }
  scrape_rounds_->inc();
  nodes_fresh_->set(static_cast<double>(fresh));
  nodes_stale_->set(static_cast<double>(stale));
}

Snapshot TelemetryAggregator::merged() const {
  util::LockGuard lock(mutex_);
  Snapshot out;
  if (ring_.empty()) return out;
  const Round& latest = ring_.back();

  // 1. Per-node series, exactly as scraped (node=/role= enforced above).
  for (const auto& [node, snap] : latest.per_node) {
    for (const MetricSample& s : snap.samples) out.samples.push_back(s);
  }

  // 2. Cluster aggregates: node/role stripped, grouped by (name, labels).
  auto aggregate = [](const Round& round) {
    std::map<std::pair<std::string, Labels>, MetricSample> agg;
    for (const auto& [node, snap] : round.per_node) {
      for (const MetricSample& s : snap.samples) {
        std::pair<std::string, Labels> key{s.name, strip_node_labels(s.labels)};
        auto it = agg.find(key);
        if (it == agg.end()) {
          MetricSample cluster = s;
          cluster.labels = key.second;
          agg.emplace(std::move(key), std::move(cluster));
          continue;
        }
        MetricSample& cluster = it->second;
        switch (s.kind) {
          case MetricSample::Kind::kCounter:
            cluster.value += s.value;
            break;
          case MetricSample::Kind::kGauge:
            cluster.value = s.value;  // last write wins, node map order
            break;
          case MetricSample::Kind::kHistogram:
            // Incompatible bucket layouts refuse to blend; the first node's
            // sample stands alone rather than silently absorbing garbage.
            (void)merge_histogram_sample(cluster, s);
            break;
        }
      }
    }
    return agg;
  };

  auto cluster_now = aggregate(latest);
  for (const auto& [key, sample] : cluster_now) out.samples.push_back(sample);

  // 3. Derived windowed series from the ring: <name>:rate1m for counters,
  //    <name>:p99_5m for histograms, computed from aggregate deltas between
  //    the latest round and the round at each window's far edge.
  auto derive = [&](util::SimDuration window, bool counters) {
    const Round* start = window_start_locked(window);
    if (start == nullptr) return;
    double dt = util::to_seconds(latest.time - start->time);
    if (dt <= 0) return;
    auto cluster_then = aggregate(*start);
    for (const auto& [key, now_sample] : cluster_now) {
      auto then = cluster_then.find(key);
      if (then == cluster_then.end()) continue;
      const MetricSample& then_sample = then->second;
      if (counters && now_sample.kind == MetricSample::Kind::kCounter) {
        double delta = now_sample.value - then_sample.value;
        if (delta < 0) continue;  // counter reset across the window
        MetricSample derived;
        derived.name = now_sample.name + ":rate1m";
        derived.labels = now_sample.labels;
        derived.kind = MetricSample::Kind::kGauge;
        derived.value = delta / dt;
        out.samples.push_back(std::move(derived));
      }
      if (!counters && now_sample.kind == MetricSample::Kind::kHistogram &&
          now_sample.bounds == then_sample.bounds) {
        std::vector<std::uint64_t> delta(now_sample.bucket_counts.size());
        bool valid = then_sample.bucket_counts.size() == delta.size();
        for (std::size_t i = 0; valid && i < delta.size(); ++i) {
          if (now_sample.bucket_counts[i] < then_sample.bucket_counts[i]) {
            valid = false;
            break;
          }
          delta[i] = now_sample.bucket_counts[i] - then_sample.bucket_counts[i];
        }
        if (!valid) continue;
        MetricSample derived;
        derived.name = now_sample.name + ":p99_5m";
        derived.labels = now_sample.labels;
        derived.kind = MetricSample::Kind::kGauge;
        derived.value = bucket_quantile(now_sample.bounds, delta, 0.99);
        out.samples.push_back(std::move(derived));
      }
    }
  };
  derive(util::seconds(60), /*counters=*/true);
  derive(util::seconds(300), /*counters=*/false);

  // 4. The aggregator's own telemetry.* series ride along so one /federate
  //    page shows fleet data AND the health of its collection.
  Snapshot self = self_registry_->snapshot();
  for (MetricSample& s : self.samples) out.samples.push_back(std::move(s));

  std::sort(out.samples.begin(), out.samples.end(),
            [](const MetricSample& a, const MetricSample& b) {
              return a.name != b.name ? a.name < b.name : a.labels < b.labels;
            });
  return out;
}

std::vector<NodeStatus> TelemetryAggregator::nodes() const {
  util::LockGuard lock(mutex_);
  std::vector<NodeStatus> out;
  out.reserve(status_.size());
  for (const auto& [node, status] : status_) out.push_back(status);
  return out;
}

const MetricSample* TelemetryAggregator::find_sample_locked(
    const Round& round, const std::string& name, const Labels& labels) const {
  for (const auto& [node, snap] : round.per_node) {
    for (const MetricSample& s : snap.samples) {
      if (s.name == name && s.labels == labels) return &s;
    }
  }
  return nullptr;
}

const TelemetryAggregator::Round* TelemetryAggregator::window_start_locked(
    util::SimDuration window) const {
  if (ring_.size() < 2) return nullptr;
  const Round& latest = ring_.back();
  util::SimTime cutoff =
      latest.time >= window ? latest.time - window : 0;
  for (const Round& round : ring_) {
    if (round.time >= cutoff && round.time < latest.time) return &round;
  }
  return nullptr;
}

std::optional<double> TelemetryAggregator::rate(const std::string& name,
                                                const Labels& labels,
                                                util::SimDuration window) const {
  util::LockGuard lock(mutex_);
  const Round* start = window_start_locked(window);
  if (start == nullptr) return std::nullopt;
  const Round& latest = ring_.back();
  const MetricSample* a = find_sample_locked(*start, name, labels);
  const MetricSample* b = find_sample_locked(latest, name, labels);
  if (a == nullptr || b == nullptr) return std::nullopt;
  double dt = util::to_seconds(latest.time - start->time);
  if (dt <= 0) return std::nullopt;
  double delta = b->value - a->value;
  if (delta < 0) return std::nullopt;  // counter reset
  return delta / dt;
}

std::optional<TelemetryAggregator::WindowedSum>
TelemetryAggregator::windowed_delta_sum(const std::string& name,
                                        const Labels& filter,
                                        util::SimDuration window) const {
  util::LockGuard lock(mutex_);
  const Round* start = window_start_locked(window);
  if (start == nullptr) return std::nullopt;
  const Round& latest = ring_.back();
  double dt = util::to_seconds(latest.time - start->time);
  if (dt <= 0) return std::nullopt;

  WindowedSum out;
  out.seconds = dt;
  bool matched = false;
  for (const auto& [node, snap] : latest.per_node) {
    for (const MetricSample& s : snap.samples) {
      if (s.name != name || s.kind != MetricSample::Kind::kCounter) continue;
      if (!labels_contain(s.labels, filter)) continue;
      const MetricSample* then = find_sample_locked(*start, name, s.labels);
      if (then == nullptr) continue;
      double delta = s.value - then->value;
      if (delta < 0) continue;  // counter reset
      out.delta += delta;
      matched = true;
    }
  }
  if (!matched) return std::nullopt;
  return out;
}

std::optional<MetricSample> TelemetryAggregator::windowed_histogram(
    const std::string& name, const Labels& labels,
    util::SimDuration window) const {
  util::LockGuard lock(mutex_);
  const Round* start = window_start_locked(window);
  if (start == nullptr) return std::nullopt;
  const Round& latest = ring_.back();
  const MetricSample* a = find_sample_locked(*start, name, labels);
  const MetricSample* b = find_sample_locked(latest, name, labels);
  if (a == nullptr || b == nullptr) return std::nullopt;
  if (a->kind != MetricSample::Kind::kHistogram ||
      b->kind != MetricSample::Kind::kHistogram || a->bounds != b->bounds ||
      a->bucket_counts.size() != b->bucket_counts.size()) {
    return std::nullopt;
  }
  MetricSample out;
  out.name = name;
  out.labels = labels;
  out.kind = MetricSample::Kind::kHistogram;
  out.bounds = b->bounds;
  out.bucket_counts.resize(b->bucket_counts.size());
  out.count = 0;
  for (std::size_t i = 0; i < out.bucket_counts.size(); ++i) {
    if (b->bucket_counts[i] < a->bucket_counts[i]) return std::nullopt;
    out.bucket_counts[i] = b->bucket_counts[i] - a->bucket_counts[i];
    out.count += out.bucket_counts[i];
  }
  out.value = b->value - a->value;
  out.p50 = bucket_quantile(out.bounds, out.bucket_counts, 0.50);
  out.p90 = bucket_quantile(out.bounds, out.bucket_counts, 0.90);
  out.p99 = bucket_quantile(out.bounds, out.bucket_counts, 0.99);
  return out;
}

std::vector<Labels> TelemetryAggregator::series_labels(
    const std::string& name) const {
  util::LockGuard lock(mutex_);
  std::vector<Labels> out;
  if (ring_.empty()) return out;
  for (const auto& [node, snap] : ring_.back().per_node) {
    for (const MetricSample& s : snap.samples) {
      if (s.name == name) out.push_back(s.labels);
    }
  }
  return out;
}

std::uint64_t TelemetryAggregator::rounds() const {
  util::LockGuard lock(mutex_);
  return round_count_;
}

util::SimTime TelemetryAggregator::last_round_time() const {
  util::LockGuard lock(mutex_);
  return ring_.empty() ? 0 : ring_.back().time;
}

}  // namespace globe::obs
