#include "obs/slo.hpp"

#include <algorithm>
#include <cmath>
#include <set>
#include <sstream>

#include "obs/export.hpp"

namespace globe::obs {

namespace {

/// Bad fraction → burn rate against the spec's error budget.
double burn_rate(double bad_fraction, double objective) {
  double budget = 1.0 - objective;
  if (budget <= 0) return bad_fraction > 0 ? HUGE_VAL : 0.0;
  return bad_fraction / budget;
}

Labels with_pair(Labels labels, const std::string& key,
                 const std::string& value) {
  labels.emplace_back(key, value);
  std::sort(labels.begin(), labels.end());
  return labels;
}

std::string number(double v) {
  if (!std::isfinite(v)) return "1e308";  // JSON has no inf
  std::ostringstream os;
  os << v;
  return os.str();
}

}  // namespace

const char* alert_state_name(AlertStateKind state) {
  switch (state) {
    case AlertStateKind::kPending: return "pending";
    case AlertStateKind::kFiring: return "firing";
    case AlertStateKind::kResolved: return "resolved";
  }
  return "unknown";
}

SloEvaluator::SloEvaluator(const TelemetryAggregator& aggregator,
                           MetricsRegistry* self_registry)
    : aggregator_(&aggregator),
      registry_(self_registry != nullptr
                    ? self_registry
                    : &const_cast<TelemetryAggregator&>(aggregator)
                           .self_registry()) {
  evaluations_ = &registry_->counter("slo.evaluations");
  firing_ = &registry_->gauge("slo.alerts_firing");
  pending_ = &registry_->gauge("slo.alerts_pending");
}

void SloEvaluator::add_spec(SloSpec spec) {
  if (spec.objective <= 0 || spec.objective >= 1) {
    throw std::invalid_argument("SLO objective must be in (0, 1): " +
                                spec.name);
  }
  if (spec.short_window == 0 || spec.long_window < spec.short_window) {
    throw std::invalid_argument("SLO windows must satisfy 0 < short <= long: " +
                                spec.name);
  }
  util::LockGuard lock(mutex_);
  specs_.push_back(std::move(spec));
}

std::size_t SloEvaluator::spec_count() const {
  util::LockGuard lock(mutex_);
  return specs_.size();
}

SloEvaluator::Burn SloEvaluator::availability_burn(
    const SloSpec& spec, const Labels& instance) const {
  Burn burn;
  auto window_burn = [&](util::SimDuration w) -> std::optional<double> {
    auto total = aggregator_->windowed_delta_sum(spec.metric, instance, w);
    if (!total.has_value() || total->delta <= 0) return std::nullopt;
    Labels good_filter = instance;
    for (const auto& kv : spec.good_labels) {
      good_filter = with_pair(std::move(good_filter), kv.first, kv.second);
    }
    auto good = aggregator_->windowed_delta_sum(spec.metric, good_filter, w);
    double good_delta = good.has_value() ? good->delta : 0.0;
    double bad_fraction =
        std::clamp((total->delta - good_delta) / total->delta, 0.0, 1.0);
    return burn_rate(bad_fraction, spec.objective);
  };
  burn.short_burn = window_burn(spec.short_window);
  burn.long_burn = window_burn(spec.long_window);
  return burn;
}

SloEvaluator::Burn SloEvaluator::latency_burn(const SloSpec& spec,
                                              const Labels& series) const {
  Burn burn;
  auto window_burn = [&](util::SimDuration w) -> std::optional<double> {
    auto sample = aggregator_->windowed_histogram(spec.metric, series, w);
    if (!sample.has_value() || sample->count == 0) return std::nullopt;
    // Good = observations in buckets whose upper bound fits the threshold.
    // A threshold strictly between bounds rounds UP: the straddling bucket
    // counts as good, because the histogram cannot distinguish its members.
    std::uint64_t good = 0;
    bool boundary_hit = false;
    for (std::size_t i = 0; i < sample->bounds.size(); ++i) {
      if (sample->bounds[i] <= spec.threshold_ms) {
        good += sample->bucket_counts[i];
        boundary_hit = sample->bounds[i] == spec.threshold_ms;
      } else {
        if (!boundary_hit) good += sample->bucket_counts[i];  // round up
        break;
      }
    }
    double bad_fraction = static_cast<double>(sample->count - good) /
                          static_cast<double>(sample->count);
    return burn_rate(std::clamp(bad_fraction, 0.0, 1.0), spec.objective);
  };
  burn.short_burn = window_burn(spec.short_window);
  burn.long_burn = window_burn(spec.long_window);
  return burn;
}

void SloEvaluator::evaluate(util::SimTime now) {
  std::vector<SloSpec> specs;
  {
    util::LockGuard lock(mutex_);
    specs = specs_;
  }

  struct Observation {
    InstanceKey key;
    std::string metric;
    Burn burn;
  };
  std::vector<Observation> observed;

  for (const SloSpec& spec : specs) {
    if (spec.type == SloSpec::Type::kAvailability) {
      // One instance per node= value among matching series, so the alert
      // names the offending node rather than a faceless cluster total.
      std::set<std::string> node_values;
      for (const Labels& labels : aggregator_->series_labels(spec.metric)) {
        for (const auto& [key, value] : labels) {
          if (key == "node") node_values.insert(value);
        }
      }
      for (const std::string& node : node_values) {
        Labels instance = with_pair(spec.filter, "node", node);
        observed.push_back(
            {{spec.name, instance}, spec.metric,
             availability_burn(spec, instance)});
      }
    } else {
      std::set<Labels> series;
      for (const Labels& labels : aggregator_->series_labels(spec.metric)) {
        bool matches = true;
        for (const auto& need : spec.filter) {
          if (std::find(labels.begin(), labels.end(), need) == labels.end()) {
            matches = false;
            break;
          }
        }
        if (matches) series.insert(labels);
      }
      for (const Labels& labels : series) {
        observed.push_back(
            {{spec.name, labels}, spec.metric, latency_burn(spec, labels)});
      }
    }
  }

  std::size_t firing = 0, pending = 0;
  {
    util::LockGuard lock(mutex_);
    // Spec lookup for thresholds (specs_ may have grown; names are stable).
    auto threshold_of = [&](const std::string& name) {
      for (const SloSpec& s : specs_) {
        if (s.name == name) return s.burn_threshold;
      }
      return 0.0;
    };
    for (const Observation& obs : observed) {
      double threshold = threshold_of(obs.key.slo);
      bool short_hot = obs.burn.short_burn.value_or(0) > threshold;
      bool long_hot = obs.burn.long_burn.value_or(0) > threshold;
      AlertStateKind next = short_hot && long_hot ? AlertStateKind::kFiring
                            : short_hot || long_hot ? AlertStateKind::kPending
                                                    : AlertStateKind::kResolved;
      auto it = instances_.find(obs.key);
      if (it == instances_.end()) {
        // A clean series never creates an instance: /alertz lists
        // incidents, not the whole SLO catalog.
        if (next == AlertStateKind::kResolved) continue;
        AlertState state;
        state.slo = obs.key.slo;
        state.metric = obs.metric;
        state.labels = obs.key.labels;
        state.state = next;
        state.since = now;
        it = instances_.emplace(obs.key, std::move(state)).first;
      } else if (it->second.state != next) {
        it->second.state = next;
        it->second.since = now;
      }
      it->second.burn_short = obs.burn.short_burn.value_or(0);
      it->second.burn_long = obs.burn.long_burn.value_or(0);
    }
    for (const auto& [key, state] : instances_) {
      if (state.state == AlertStateKind::kFiring) ++firing;
      if (state.state == AlertStateKind::kPending) ++pending;
    }
  }
  evaluations_->inc();
  firing_->set(static_cast<double>(firing));
  pending_->set(static_cast<double>(pending));
}

std::vector<AlertState> SloEvaluator::alerts() const {
  util::LockGuard lock(mutex_);
  std::vector<AlertState> out;
  out.reserve(instances_.size());
  for (const auto& [key, state] : instances_) out.push_back(state);
  return out;
}

std::string SloEvaluator::to_json() const {
  std::vector<AlertState> states = alerts();
  std::ostringstream os;
  os << "{\"alerts\":[";
  for (std::size_t i = 0; i < states.size(); ++i) {
    const AlertState& a = states[i];
    if (i > 0) os << ',';
    os << "{\"slo\":\"" << json_escape(a.slo) << "\",\"metric\":\""
       << json_escape(a.metric) << "\",\"labels\":{";
    for (std::size_t l = 0; l < a.labels.size(); ++l) {
      if (l > 0) os << ',';
      os << '"' << json_escape(a.labels[l].first) << "\":\""
         << json_escape(a.labels[l].second) << '"';
    }
    os << "},\"state\":\"" << alert_state_name(a.state)
       << "\",\"burn_short\":" << number(a.burn_short)
       << ",\"burn_long\":" << number(a.burn_long)
       << ",\"since_ns\":" << a.since << '}';
  }
  os << "]}";
  return os.str();
}

}  // namespace globe::obs
