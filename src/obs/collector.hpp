// Session-wide trace assembly (DESIGN.md §10).
//
// Every side of an RPC records its span tree as an independent fragment:
// the proxy's "fetch" root on the client flow, one "rpc:<service>/<method>"
// root per handled request on each serving host.  Fragments share a 128-bit
// trace id and carry the span id of their remote parent, so the collector
// can stitch them back into ONE tree per trace — the cross-host view the
// paper's §4 latency decomposition needs (network time is the gap between a
// client stage span and the server spans nested under it).
//
// Memory is bounded twice over: assembled traces live in a fixed-capacity
// ring (oldest evicted first) and unassembled fragments in a bounded
// pending pool (whole oldest traces evicted when full).  Retention is
// tail-based: once the ROOT fragment arrives and the trace's total duration
// is known, the trace is kept if it is slow (root duration at or above
// `keep_slower_than`), and otherwise only every `keep_one_in`-th trace is
// kept — the classic keep-if-slow tail sampler, decided where the latency
// is known rather than up front.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <optional>
#include <vector>

#include "obs/trace.hpp"
#include "util/mutex.hpp"
#include "util/bounds_annotations.hpp"

namespace globe::obs {

/// Tail-based retention policy.  Defaults keep every slow trace plus a
/// 1-in-16 sample of the rest.
struct TailSamplingPolicy {
  /// Traces whose root duration is >= this are always kept.
  util::SimDuration keep_slower_than = util::millis(250);
  /// Of the remaining (fast) traces, keep every Nth.  1 keeps everything;
  /// 0 keeps only slow traces.
  std::uint64_t keep_one_in = 16;
};

/// One assembled trace: the root fragment with every remote fragment
/// attached under the span that caused it.
struct StitchedTrace {
  std::uint64_t trace_hi = 0;
  std::uint64_t trace_lo = 0;
  bool complete = true;       // false when fragments never found their parent
  std::size_t fragments = 1;  // fragments merged into `root` (incl. the root)
  SpanRecord root;

  std::string trace_id() const {
    return TraceContext{trace_hi, trace_lo, 0, true}.trace_id();
  }
  util::SimDuration duration() const { return root.duration; }
};

class TraceCollector final : public TraceSink {
 public:
  explicit TraceCollector(std::size_t capacity = 256);

  /// Thread-safe; called by tracers on every flow and serving host.
  void record(TraceFragment fragment) override GLOBE_EXCLUDES(mutex_);

  void set_policy(const TailSamplingPolicy& policy) GLOBE_EXCLUDES(mutex_);
  TailSamplingPolicy policy() const GLOBE_EXCLUDES(mutex_);

  /// Up to `max` most recent kept traces whose root duration is at least
  /// `min_duration`, newest first.
  std::vector<StitchedTrace> recent(std::size_t max = 64,
                                    util::SimDuration min_duration = 0) const
      GLOBE_EXCLUDES(mutex_);

  /// The kept trace with this id, if it is still in the ring.
  std::optional<StitchedTrace> find(std::uint64_t trace_hi,
                                    std::uint64_t trace_lo) const
      GLOBE_EXCLUDES(mutex_);

  std::size_t size() const GLOBE_EXCLUDES(mutex_);  // kept traces in the ring
  std::size_t capacity() const { return capacity_; }
  std::size_t pending_fragments() const GLOBE_EXCLUDES(mutex_);
  std::uint64_t traces_seen() const GLOBE_EXCLUDES(mutex_);
  std::uint64_t traces_kept() const GLOBE_EXCLUDES(mutex_);

  /// Drops every kept trace, pending fragment and counter (test isolation).
  void clear() GLOBE_EXCLUDES(mutex_);

 private:
  using TraceKey = std::pair<std::uint64_t, std::uint64_t>;

  void assemble_locked(const TraceKey& key, TraceFragment root)
      GLOBE_REQUIRES(mutex_);
  void evict_pending_locked() GLOBE_REQUIRES(mutex_);

  const std::size_t capacity_;

  mutable util::Mutex mutex_;
  TailSamplingPolicy policy_ GLOBE_GUARDED_BY(mutex_);
  // Fragments waiting for their trace's root, in arrival order per trace.
  std::map<TraceKey, std::vector<TraceFragment>> pending_
      GLOBE_BOUNDED GLOBE_GUARDED_BY(mutex_);
  std::deque<TraceKey> pending_order_ GLOBE_BOUNDED GLOBE_GUARDED_BY(mutex_);
  std::size_t pending_count_ GLOBE_GUARDED_BY(mutex_) = 0;
  std::deque<StitchedTrace> ring_ GLOBE_BOUNDED GLOBE_GUARDED_BY(mutex_);  // oldest first
  std::uint64_t seen_ GLOBE_GUARDED_BY(mutex_) = 0;
  std::uint64_t kept_ GLOBE_GUARDED_BY(mutex_) = 0;
};

/// Process-wide default collector.  The RPC dispatcher and the proxy record
/// here unless handed a specific collector; /tracez serves from it.
TraceCollector& global_trace_collector();

}  // namespace globe::obs
