#include "obs/collector.hpp"

#include <algorithm>

namespace globe::obs {

namespace {

/// Upper bound on fragments parked while waiting for their root; whole
/// oldest traces are evicted past it, so a lost root (crashed client, link
/// cut mid-trace) cannot grow the pool without bound.
constexpr std::size_t kMaxPendingFragments = 4096;

/// Depth-first search for the span with `span_id`; returns a mutable
/// pointer into `node`'s subtree or nullptr.
SpanRecord* find_by_id(SpanRecord& node, std::uint64_t span_id) {
  if (node.span_id == span_id) return &node;
  for (SpanRecord& child : node.children) {
    if (SpanRecord* found = find_by_id(child, span_id)) return found;
  }
  return nullptr;
}

/// Inserts `span` into `parent`'s children keeping start order.
void attach_child(SpanRecord& parent, SpanRecord span) {
  auto it = std::upper_bound(
      parent.children.begin(), parent.children.end(), span,
      [](const SpanRecord& a, const SpanRecord& b) { return a.start < b.start; });
  parent.children.insert(it, std::move(span));
}

}  // namespace

TraceCollector::TraceCollector(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {}

void TraceCollector::set_policy(const TailSamplingPolicy& policy) {
  util::LockGuard lock(mutex_);
  policy_ = policy;
}

TailSamplingPolicy TraceCollector::policy() const {
  util::LockGuard lock(mutex_);
  return policy_;
}

void TraceCollector::evict_pending_locked() {
  while (pending_count_ > kMaxPendingFragments && !pending_order_.empty()) {
    TraceKey oldest = pending_order_.front();
    pending_order_.pop_front();
    auto it = pending_.find(oldest);
    if (it != pending_.end()) {
      pending_count_ -= it->second.size();
      pending_.erase(it);
    }
  }
}

void TraceCollector::record(TraceFragment fragment) {
  if (!fragment.sampled) return;
  TraceKey key{fragment.trace_hi, fragment.trace_lo};
  util::LockGuard lock(mutex_);
  if (fragment.parent_span != 0) {
    // A remote fragment: park it until the trace's root arrives.
    auto [it, inserted] = pending_.try_emplace(key);
    if (inserted) pending_order_.push_back(key);
    it->second.push_back(std::move(fragment));
    ++pending_count_;
    evict_pending_locked();
    return;
  }
  assemble_locked(key, std::move(fragment));
}

void TraceCollector::assemble_locked(const TraceKey& key, TraceFragment root) {
  StitchedTrace trace;
  trace.trace_hi = key.first;
  trace.trace_lo = key.second;
  trace.root = std::move(root.span);

  auto it = pending_.find(key);
  if (it != pending_.end()) {
    std::vector<TraceFragment> fragments = std::move(it->second);
    pending_count_ -= fragments.size();
    pending_.erase(it);
    for (auto order = pending_order_.begin(); order != pending_order_.end();) {
      order = *order == key ? pending_order_.erase(order) : order + 1;
    }

    // Attach fragments whose parent span is already in the tree; repeat so
    // a fragment whose parent is another fragment (a server that nested a
    // traced call to a second server) lands once its parent does.
    std::vector<bool> attached(fragments.size(), false);
    bool progress = true;
    while (progress) {
      progress = false;
      for (std::size_t i = 0; i < fragments.size(); ++i) {
        if (attached[i]) continue;
        SpanRecord* parent = find_by_id(trace.root, fragments[i].parent_span);
        if (parent == nullptr) continue;
        attach_child(*parent, std::move(fragments[i].span));
        attached[i] = true;
        ++trace.fragments;
        progress = true;
      }
    }
    // Orphans (parent span never seen — e.g. the parent fragment was
    // evicted) hang off the root so the work is still visible.
    for (std::size_t i = 0; i < fragments.size(); ++i) {
      if (attached[i]) continue;
      attach_child(trace.root, std::move(fragments[i].span));
      ++trace.fragments;
      trace.complete = false;
    }
  }

  // Tail-based retention: the decision runs here, where the root duration
  // is finally known.
  ++seen_;
  bool keep = trace.root.duration >= policy_.keep_slower_than ||
              (policy_.keep_one_in != 0 && seen_ % policy_.keep_one_in == 0);
  if (!keep) return;
  ++kept_;
  ring_.push_back(std::move(trace));
  while (ring_.size() > capacity_) ring_.pop_front();
}

std::vector<StitchedTrace> TraceCollector::recent(
    std::size_t max, util::SimDuration min_duration) const {
  util::LockGuard lock(mutex_);
  std::vector<StitchedTrace> out;
  for (auto it = ring_.rbegin(); it != ring_.rend() && out.size() < max; ++it) {
    if (it->root.duration < min_duration) continue;
    out.push_back(*it);
  }
  return out;
}

std::optional<StitchedTrace> TraceCollector::find(std::uint64_t trace_hi,
                                                  std::uint64_t trace_lo) const {
  util::LockGuard lock(mutex_);
  for (auto it = ring_.rbegin(); it != ring_.rend(); ++it) {
    if (it->trace_hi == trace_hi && it->trace_lo == trace_lo) return *it;
  }
  return std::nullopt;
}

std::size_t TraceCollector::size() const {
  util::LockGuard lock(mutex_);
  return ring_.size();
}

std::size_t TraceCollector::pending_fragments() const {
  util::LockGuard lock(mutex_);
  return pending_count_;
}

std::uint64_t TraceCollector::traces_seen() const {
  util::LockGuard lock(mutex_);
  return seen_;
}

std::uint64_t TraceCollector::traces_kept() const {
  util::LockGuard lock(mutex_);
  return kept_;
}

void TraceCollector::clear() {
  util::LockGuard lock(mutex_);
  pending_.clear();
  pending_order_.clear();
  pending_count_ = 0;
  ring_.clear();
  seen_ = 0;
  kept_ = 0;
}

TraceCollector& global_trace_collector() {
  static TraceCollector collector(256);
  return collector;
}

}  // namespace globe::obs
