// Structured, span-correlated event log (DESIGN.md §10).
//
// Where the metrics registry answers "how often" and the trace collector
// answers "where did the time go", the event log answers "what exactly
// happened": discrete, security- and availability-relevant occurrences
// (an element failing verification, a replica failing over, a cache
// eviction) recorded as JSON lines.  Every record is stamped with the
// trace context in force on the emitting thread, so an event can be
// joined back to the exact fetch (and the exact span) that triggered it —
// `grep <trace_id>` across /tracez output and the event log tells the
// whole story of one request.
//
// Records live in a bounded ring (oldest evicted first).  Emission is
// thread-safe and cheap when the record is below the minimum level.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "obs/trace.hpp"
#include "util/clock.hpp"
#include "util/bounds_annotations.hpp"
#include "util/mutex.hpp"

namespace globe::obs {

enum class EventLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// "debug" / "info" / "warn" / "error".
const char* event_level_name(EventLevel level);

/// One structured event.  `trace_hi`/`trace_lo`/`span_id` are captured from
/// the emitting thread's current trace context (all zero when the event
/// happened outside any traced operation).
struct EventRecord {
  EventLevel level = EventLevel::kInfo;
  util::SimTime time = 0;     // virtual (or wall) time; 0 = not supplied
  std::string component;      // subsystem label, e.g. "proxy", "replication"
  std::string event;          // machine-readable name, e.g. "binding_failed"
  std::string detail;         // free-form human context
  std::uint64_t trace_hi = 0;
  std::uint64_t trace_lo = 0;
  std::uint64_t span_id = 0;  // innermost open span when emitted

  /// One JSON object (one line, no trailing newline).  `trace_id` and
  /// `span_id` appear only when the event was inside a trace.
  std::string to_json() const;
};

class EventLog {
 public:
  explicit EventLog(std::size_t capacity = 1024);

  /// Records an event, stamping the calling thread's trace context.
  /// Discarded when below the minimum level.  Thread-safe.
  void emit(EventLevel level, std::string component, std::string event,
            std::string detail = "", util::SimTime time = 0)
      GLOBE_EXCLUDES(mutex_);

  void set_min_level(EventLevel level) GLOBE_EXCLUDES(mutex_);
  EventLevel min_level() const GLOBE_EXCLUDES(mutex_);

  /// Up to `max` most recent records, newest first.
  std::vector<EventRecord> recent(std::size_t max = 128) const
      GLOBE_EXCLUDES(mutex_);

  /// Every retained record belonging to the given trace, oldest first.
  std::vector<EventRecord> for_trace(std::uint64_t trace_hi,
                                     std::uint64_t trace_lo) const
      GLOBE_EXCLUDES(mutex_);

  std::size_t size() const GLOBE_EXCLUDES(mutex_);
  std::size_t capacity() const { return capacity_; }
  /// Total records accepted since construction/clear (including evicted).
  std::uint64_t emitted() const GLOBE_EXCLUDES(mutex_);

  void clear() GLOBE_EXCLUDES(mutex_);

 private:
  const std::size_t capacity_;

  mutable util::Mutex mutex_;
  EventLevel min_level_ GLOBE_GUARDED_BY(mutex_) = EventLevel::kDebug;
  std::deque<EventRecord> ring_ GLOBE_BOUNDED GLOBE_GUARDED_BY(mutex_);  // oldest first
  std::uint64_t emitted_ GLOBE_GUARDED_BY(mutex_) = 0;
};

/// Process-wide default log: instrumented subsystems emit here.
EventLog& global_event_log();

}  // namespace globe::obs
