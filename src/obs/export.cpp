#include "obs/export.hpp"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

namespace globe::obs {

namespace {

/// Shortest representation that round-trips: integers print bare, other
/// values with up to 17 significant digits trimmed of trailing zeros.
std::string number(double v) {
  if (!std::isfinite(v)) return "0";  // JSON has no inf/nan
  if (v == static_cast<double>(static_cast<long long>(v)) &&
      std::fabs(v) < 9.0e15) {
    return std::to_string(static_cast<long long>(v));
  }
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

const char* kind_name(MetricSample::Kind kind) {
  switch (kind) {
    case MetricSample::Kind::kCounter: return "counter";
    case MetricSample::Kind::kGauge: return "gauge";
    case MetricSample::Kind::kHistogram: return "histogram";
  }
  return "unknown";
}

void labels_to_json(std::ostringstream& os, const Labels& labels) {
  os << '{';
  bool first = true;
  for (const auto& [key, value] : labels) {
    if (!first) os << ',';
    first = false;
    os << '"' << json_escape(key) << "\":\"" << json_escape(value) << '"';
  }
  os << '}';
}

void sample_to_json(std::ostringstream& os, const MetricSample& s) {
  os << "{\"name\":\"" << json_escape(s.name) << "\",\"labels\":";
  labels_to_json(os, s.labels);
  os << ",\"kind\":\"" << kind_name(s.kind) << '"';
  if (s.kind == MetricSample::Kind::kHistogram) {
    os << ",\"sum\":" << number(s.value) << ",\"count\":" << s.count
       << ",\"p50\":" << number(s.p50) << ",\"p90\":" << number(s.p90)
       << ",\"p99\":" << number(s.p99) << ",\"buckets\":[";
    for (std::size_t i = 0; i < s.bucket_counts.size(); ++i) {
      if (i > 0) os << ',';
      os << "{\"le\":";
      if (i < s.bounds.size()) {
        os << number(s.bounds[i]);
      } else {
        os << "\"inf\"";
      }
      os << ",\"count\":" << s.bucket_counts[i] << '}';
    }
    os << ']';
  } else {
    os << ",\"value\":" << number(s.value);
  }
  os << '}';
}

void span_to_json(std::ostringstream& os, const SpanRecord& span) {
  os << "{\"name\":\"" << json_escape(span.name)
     << "\",\"start_ns\":" << span.start
     << ",\"duration_ns\":" << span.duration;
  // Tracing fields are emitted only when set, so span trees built without
  // ids (plain local tracing) keep their original shape.
  if (span.span_id != 0) os << ",\"span_id\":" << span.span_id;
  if (!span.host.empty()) {
    os << ",\"host\":\"" << json_escape(span.host) << '"';
  }
  os << ",\"children\":[";
  for (std::size_t i = 0; i < span.children.size(); ++i) {
    if (i > 0) os << ',';
    span_to_json(os, span.children[i]);
  }
  os << "]}";
}

}  // namespace

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string to_text(const Snapshot& snapshot) {
  std::ostringstream os;
  for (const MetricSample& s : snapshot.samples) {
    os << s.name;
    if (!s.labels.empty()) {
      os << '{';
      bool first = true;
      for (const auto& [key, value] : s.labels) {
        if (!first) os << ',';
        first = false;
        os << key << '=' << value;
      }
      os << '}';
    }
    if (s.kind == MetricSample::Kind::kHistogram) {
      os << " count=" << s.count << " sum=" << number(s.value)
         << " p50=" << number(s.p50) << " p90=" << number(s.p90)
         << " p99=" << number(s.p99) << '\n';
      for (std::size_t i = 0; i < s.bucket_counts.size(); ++i) {
        os << "  le=";
        if (i < s.bounds.size()) {
          os << number(s.bounds[i]);
        } else {
          os << "inf";
        }
        os << ' ' << s.bucket_counts[i];
        // The trace that last landed in this bucket: a slow bucket on
        // /federate links straight to its /tracez trace.
        if (i < s.exemplars.size() && s.exemplars[i].valid()) {
          os << "  # exemplar trace="
             << TraceContext{s.exemplars[i].trace_hi, s.exemplars[i].trace_lo,
                             0, true}
                    .trace_id();
        }
        os << '\n';
      }
    } else {
      os << ' ' << number(s.value) << '\n';
    }
  }
  return os.str();
}

std::string to_json(const Snapshot& snapshot) {
  std::ostringstream os;
  os << "[\n";
  for (std::size_t i = 0; i < snapshot.samples.size(); ++i) {
    if (i > 0) os << ",\n";
    os << "  ";
    sample_to_json(os, snapshot.samples[i]);
  }
  os << "\n]";
  return os.str();
}

std::string to_json(const SpanRecord& span) {
  std::ostringstream os;
  span_to_json(os, span);
  return os.str();
}

util::Status write_bench_json(const std::string& path,
                              const std::string& bench_name,
                              const Snapshot& snapshot) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    return util::Status(util::ErrorCode::kUnavailable,
                        "cannot open " + path + " for writing");
  }
  out << "{\"bench\":\"" << json_escape(bench_name) << "\",\n\"metrics\":"
      << to_json(snapshot) << "}\n";
  out.flush();
  if (!out) {
    return util::Status(util::ErrorCode::kUnavailable, "write failed: " + path);
  }
  return util::Status::ok();
}

}  // namespace globe::obs
