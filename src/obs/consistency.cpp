#include "obs/consistency.hpp"

#include <algorithm>
#include <utility>

#include "obs/collector.hpp"
#include "obs/telemetry.hpp"
#include "rpc/rpc.hpp"

namespace globe::obs {

using util::Bytes;
using util::BytesView;
using util::ErrorCode;
using util::Reader;
using util::Result;
using util::Writer;

namespace {

constexpr std::size_t kOidSize = 20;

// Staleness is dominated by refresh cadence (seconds), not link latency;
// buckets span one tick to many minutes.
const std::vector<double> kStalenessBoundsMs = {
    100, 500, 1000, 2500, 5000, 10000, 30000, 60000, 300000, 900000};

}  // namespace

void encode_consistency(Writer& w, const ConsistencyReport& report) {
  w.u8(kConsistencyVersion);
  w.u32(static_cast<std::uint32_t>(report.docs.size()));
  for (const DocConsistency& d : report.docs) {
    // Locally-built reports always carry exact-size fields
    // (ObjectServer::consistency_report); the decoder enforces it anyway.
    w.raw(d.oid);
    w.u64(d.epoch);
    w.raw(d.digest);
    w.u64(d.earliest_expiry);
  }
}

Result<ConsistencyReport> decode_consistency(BytesView data) {
  try {
    Reader r(data);
    std::uint8_t version = r.u8();
    if (version != kConsistencyVersion) {
      return Result<ConsistencyReport>(
          ErrorCode::kProtocol,
          "unsupported consistency version " + std::to_string(version));
    }
    std::uint32_t n = util::checked_count(
        r.u32(), static_cast<std::uint32_t>(kMaxReportDocs));
    ConsistencyReport report;
    report.docs.reserve(n);
    for (std::uint32_t i = 0; i < n; ++i) {
      DocConsistency d;
      d.oid = r.raw(kOidSize);
      d.epoch = r.u64();
      d.digest = r.raw(kConsistencyDigestSize);
      d.earliest_expiry = r.u64();
      report.docs.push_back(std::move(d));
    }
    r.expect_end();
    return report;
  } catch (const util::SerialError& e) {
    return Result<ConsistencyReport>(ErrorCode::kProtocol, e.what());
  }
}

const char* replica_consistency_name(ReplicaConsistency state) {
  switch (state) {
    case ReplicaConsistency::kFresh: return "fresh";
    case ReplicaConsistency::kStale: return "stale";
    case ReplicaConsistency::kDiverged: return "diverged";
    case ReplicaConsistency::kExpired: return "expired";
    case ReplicaConsistency::kMissing: return "missing";
    case ReplicaConsistency::kUnreachable: return "unreachable";
  }
  return "unreachable";
}

ConsistencyAuditor::ConsistencyAuditor() : ConsistencyAuditor(Config()) {}

ConsistencyAuditor::ConsistencyAuditor(Config config)
    : config_(std::move(config)) {
  if (config_.self_registry != nullptr) {
    self_registry_ = config_.self_registry;
  } else {
    owned_registry_ = std::make_unique<MetricsRegistry>();
    owned_registry_->set_default_labels(
        {{"node", config_.node}, {"role", "auditor"}});
    self_registry_ = owned_registry_.get();
  }
  audit_rounds_ = &self_registry_->counter("replication.audit.rounds");
  stale_replicas_ = &self_registry_->gauge("replication.stale_replicas");
  diverged_replicas_ = &self_registry_->gauge("replication.diverged_replicas");
}

void ConsistencyAuditor::set_master(AuditTarget master) {
  util::LockGuard lock(mutex_);
  master_ = std::move(master);
}

void ConsistencyAuditor::add_replica(AuditTarget replica) {
  // Pre-create every per-state check series at zero: SLO burn windows
  // (windowed_delta_sum) only count series present at the window START, so
  // a stale counter born mid-incident would be invisible to the very alert
  // it exists to fire.
  for (ReplicaConsistency state :
       {ReplicaConsistency::kFresh, ReplicaConsistency::kStale,
        ReplicaConsistency::kDiverged, ReplicaConsistency::kExpired,
        ReplicaConsistency::kMissing, ReplicaConsistency::kUnreachable}) {
    self_registry_->counter("replication.audit.checks",
                            {{"replica", replica.node},
                             {"state", replica_consistency_name(state)}});
  }
  util::LockGuard lock(mutex_);
  replicas_.push_back(std::move(replica));
}

std::size_t ConsistencyAuditor::replica_count() const {
  util::LockGuard lock(mutex_);
  return replicas_.size();
}

std::optional<ConsistencyReport> ConsistencyAuditor::fetch_report(
    net::Transport& transport, Tracer& tracer, const AuditTarget& target,
    std::string* error) {
  auto span = tracer.span("audit:" + target.node);
  rpc::RpcClient client(transport, target.endpoint);
  Result<Bytes> reply =
      client.call(rpc::kTelemetryService, kConsistency, BytesView());
  if (!reply.is_ok()) {
    *error = reply.status().to_string();
    return std::nullopt;
  }
  try {
    Reader r(*reply);
    std::string node = r.str();
    if (node != target.node) {
      // Same rule as metrics scrapes: an endpoint answering with someone
      // else's identity must not be filed under the claimed node.
      *error = "identity mismatch: target " + target.node + " answered as " +
               node;
      return std::nullopt;
    }
    BytesView body = BytesView(*reply).subspan(reply->size() - r.remaining());
    Result<ConsistencyReport> report = decode_consistency(body);
    if (!report.is_ok()) {
      *error = report.status().to_string();
      return std::nullopt;
    }
    return std::move(*report);
  } catch (const util::SerialError& e) {
    *error = std::string("malformed consistency reply: ") + e.what();
    return std::nullopt;
  }
}

void ConsistencyAuditor::audit_round(net::Transport& transport) {
  std::optional<AuditTarget> master;
  std::vector<AuditTarget> replicas;
  {
    util::LockGuard lock(mutex_);
    master = master_;
    replicas = replicas_;
  }

  Tracer tracer([&transport] { return transport.now(); });
  tracer.set_host(config_.node);
  tracer.set_sink(config_.trace_sink != nullptr ? config_.trace_sink
                                                : &global_trace_collector());

  struct Outcome {
    bool ok = false;
    std::string error;
    ConsistencyReport report;
  };
  Outcome master_out;
  std::vector<Outcome> outcomes(replicas.size());
  {
    auto round_span = tracer.span("replication.audit_round");
    if (master.has_value()) {
      auto report = fetch_report(transport, tracer, *master, &master_out.error);
      if (report.has_value()) {
        master_out.ok = true;
        master_out.report = std::move(*report);
      }
    }
    for (std::size_t i = 0; i < replicas.size(); ++i) {
      auto report =
          fetch_report(transport, tracer, replicas[i], &outcomes[i].error);
      if (report.has_value()) {
        outcomes[i].ok = true;
        outcomes[i].report = std::move(*report);
      }
    }
  }
  util::SimTime now = transport.now();

  // Classification under the lock; metric flushes are collected into plain
  // locals and applied after release (registry handles are atomics, and the
  // registry has its own lock).
  struct Observation {
    std::string replica;
    ReplicaConsistency state = ReplicaConsistency::kUnreachable;
    double staleness_ms = 0;
    bool forged = false;
  };
  std::vector<Observation> observations;
  std::vector<std::pair<std::string, double>> horizons;  // replica -> min s
  std::size_t stale_count = 0, diverged_count = 0;
  {
    util::LockGuard lock(mutex_);
    if (master_out.ok) {
      std::map<Bytes, DocState> next;
      for (const DocConsistency& d : master_out.report.docs) {
        DocState state;
        state.epoch = d.epoch;
        state.digest = d.digest;
        auto it = docs_.find(d.oid);
        state.epoch_since =
            (it != docs_.end() && it->second.epoch == d.epoch)
                ? it->second.epoch_since
                : now;
        next.emplace(d.oid, std::move(state));
      }
      docs_.clear();
      docs_ = std::move(next);
      master_reachable_ = true;
    } else {
      // Keep the last-known authoritative view: replicas are still
      // classified against it, just flagged by the master scrape error.
      master_reachable_ = false;
    }

    rows_.clear();
    // Behind-pairs carry their first-behind time across rounds even while
    // the master keeps advancing epochs; recovered pairs drop out here.
    std::map<std::pair<std::string, Bytes>, util::SimTime> next_stale;
    for (std::size_t i = 0; i < replicas.size(); ++i) {
      const Outcome& out = outcomes[i];
      std::map<Bytes, const DocConsistency*> reported;
      if (out.ok) {
        for (const DocConsistency& d : out.report.docs) {
          reported.emplace(d.oid, &d);
        }
      }
      bool any_behind = false, any_diverged = false;
      double min_horizon_s = 0;
      bool has_horizon = false;
      for (const auto& [oid, authoritative] : docs_) {
        ReplicaRow row;
        row.replica = replicas[i].node;
        row.oid_hex = util::hex_encode(oid);
        row.master_epoch = authoritative.epoch;
        std::pair<std::string, Bytes> stale_key{replicas[i].node, oid};
        auto since_it = stale_since_.find(stale_key);
        util::SimTime behind_since = since_it != stale_since_.end()
                                         ? since_it->second
                                         : authoritative.epoch_since;
        double behind_ms = util::to_millis(now - behind_since);
        if (!out.ok) {
          row.state = ReplicaConsistency::kUnreachable;
          // Keep the behind-marker: an unreachable replica has not caught
          // up, its staleness clock must not reset when it reappears.
          if (since_it != stale_since_.end()) {
            next_stale.emplace(std::move(stale_key), behind_since);
          }
        } else {
          auto found = reported.find(oid);
          if (found == reported.end()) {
            row.state = ReplicaConsistency::kMissing;
            row.staleness_ms = behind_ms;
            next_stale.emplace(std::move(stale_key), behind_since);
            any_behind = true;
          } else {
            const DocConsistency& d = *found->second;
            row.epoch = d.epoch;
            row.expiry_horizon_s =
                util::to_seconds(d.earliest_expiry) - util::to_seconds(now);
            if (!has_horizon || row.expiry_horizon_s < min_horizon_s) {
              min_horizon_s = row.expiry_horizon_s;
              has_horizon = true;
            }
            if (d.epoch == authoritative.epoch) {
              row.state = d.digest == authoritative.digest
                              ? ReplicaConsistency::kFresh
                              : ReplicaConsistency::kDiverged;
            } else if (d.epoch > authoritative.epoch) {
              // A replica cannot be fresher than the signing authority:
              // well-formed lie, counted and quarantined as divergence.
              row.state = ReplicaConsistency::kDiverged;
            } else {
              row.state = d.earliest_expiry > now
                              ? ReplicaConsistency::kStale
                              : ReplicaConsistency::kExpired;
              row.staleness_ms = behind_ms;
              next_stale.emplace(std::move(stale_key), behind_since);
              any_behind = true;
            }
            any_diverged |= row.state == ReplicaConsistency::kDiverged;
          }
        }
        Observation obs;
        obs.replica = row.replica;
        obs.state = row.state;
        obs.staleness_ms = row.staleness_ms;
        obs.forged = out.ok && row.epoch > row.master_epoch;
        observations.push_back(std::move(obs));
        rows_.push_back(std::move(row));
      }
      if (any_behind) ++stale_count;
      if (any_diverged) ++diverged_count;
      if (has_horizon) horizons.emplace_back(replicas[i].node, min_horizon_s);
    }
    stale_since_.clear();
    stale_since_ = std::move(next_stale);
    round_count_ += 1;
  }

  // Self-telemetry outside the lock.
  if (master.has_value() && !master_out.ok) {
    self_registry_
        ->counter("telemetry.scrape_errors", {{"node", master->node}})
        .inc();
  }
  for (std::size_t i = 0; i < replicas.size(); ++i) {
    if (!outcomes[i].ok) {
      self_registry_
          ->counter("telemetry.scrape_errors", {{"node", replicas[i].node}})
          .inc();
    }
  }
  for (const Observation& obs : observations) {
    self_registry_
        ->counter("replication.audit.checks",
                  {{"replica", obs.replica},
                   {"state", replica_consistency_name(obs.state)}})
        .inc();
    if (obs.state == ReplicaConsistency::kStale ||
        obs.state == ReplicaConsistency::kExpired ||
        obs.state == ReplicaConsistency::kMissing) {
      self_registry_
          ->histogram("replication.staleness_ms", kStalenessBoundsMs,
                      {{"replica", obs.replica}})
          .observe(obs.staleness_ms);
    }
    if (obs.forged) {
      self_registry_
          ->counter("replication.audit.forged", {{"replica", obs.replica}})
          .inc();
    }
  }
  for (const auto& [replica, horizon_s] : horizons) {
    self_registry_
        ->gauge("replication.cert_expiry_horizon_s", {{"replica", replica}})
        .set(horizon_s);
  }
  stale_replicas_->set(static_cast<double>(stale_count));
  diverged_replicas_->set(static_cast<double>(diverged_count));
  audit_rounds_->inc();
}

std::vector<ReplicaRow> ConsistencyAuditor::rows() const {
  util::LockGuard lock(mutex_);
  return rows_;
}

bool ConsistencyAuditor::converged() const {
  util::LockGuard lock(mutex_);
  if (!master_reachable_ || rows_.empty()) return false;
  return std::all_of(rows_.begin(), rows_.end(), [](const ReplicaRow& row) {
    return row.state == ReplicaConsistency::kFresh;
  });
}

std::uint64_t ConsistencyAuditor::rounds() const {
  util::LockGuard lock(mutex_);
  return round_count_;
}

std::uint64_t ConsistencyAuditor::master_epoch_sum() const {
  util::LockGuard lock(mutex_);
  std::uint64_t sum = 0;
  for (const auto& [oid, state] : docs_) sum += state.epoch;
  return sum;
}

}  // namespace globe::obs
