// Cluster telemetry plane (DESIGN.md §11): per-node registry federation.
//
// Every fleet role (proxy, object server, static server, naming node,
// location node, replication coordinator) owns a MetricsRegistry tagged
// with node=/role= labels.  A TelemetryNode exposes that registry over the
// ordinary RPC layer as `telemetry/scrape` — the snapshot rides the same
// wire framing as every GlobeDoc protocol, so a scrape crosses SimNet links
// (and pays their latency) exactly like a fetch does, and carries the
// caller's trace header so scrape rounds are themselves visible in /tracez.
//
// A central TelemetryAggregator polls the fleet:
//   * one scrape round = one traced RPC per target, each decoded snapshot
//     stamped with the target's node/role labels;
//   * snapshots merge across nodes (counter sums, gauge last-write,
//     histogram bucket-wise merge via obs::merge_histogram_sample);
//   * every round is retained in a bounded ring of timestamped windows, so
//     *rates* (counter delta / elapsed) and *windowed quantiles* (quantile
//     of the bucket deltas over the last W) are computable, not just
//     lifetime values — this is what the SLO burn-rate evaluator
//     (obs/slo.hpp) reads;
//   * a target that times out, is unreachable, or returns a malformed
//     snapshot is marked stale — its data simply drops out of the merged
//     view until it answers again (telemetry.scrape_errors counts each
//     failure) — a flaky untrusted replica can deny its own telemetry, but
//     never poison the fleet's.
//
// Security note: a scraped snapshot crossed the wire from a possibly
// malicious node (DESIGN.md §9).  decode_snapshot() is the sanitizing gate:
// strict bounds-checked parsing, hard caps on series/bucket counts, and
// bucket-layout validation — beyond it the data can still *lie* about that
// node's numbers (untrusted replicas always could), but it cannot corrupt
// the aggregator or other nodes' series.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "net/transport.hpp"
#include "obs/consistency.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "rpc/rpc.hpp"
#include "util/mutex.hpp"
#include "util/bounds_annotations.hpp"
#include "util/taint_annotations.hpp"
#include "util/thread_annotations.hpp"

namespace globe::obs {

class ProfileRegistry;  // obs/profile.hpp

/// RPC method ids under rpc::kTelemetryService.
enum TelemetryMethod : std::uint16_t {
  kScrape = 1,       // {} -> telemetry reply (version, node, role, snapshot)
  kConsistency = 2,  // {} -> node, consistency report (obs/consistency.hpp)
};

/// Wire codec for a registry snapshot (u8 version, then the sample list).
/// Caps: at most kMaxSeries samples, kMaxBuckets buckets per histogram —
/// a hostile node cannot balloon the aggregator's memory.
inline constexpr std::uint8_t kSnapshotVersion = 1;
inline constexpr std::size_t kMaxSeries = 4096;
inline constexpr std::size_t kMaxBuckets = 64;
inline constexpr std::size_t kMaxLabels = 16;

void encode_snapshot(util::Writer& w, const Snapshot& snapshot);
/// Sanitizer: the only path wire bytes take into Snapshot values.  Rejects
/// truncation, unknown versions, oversized series/label/bucket counts and
/// non-increasing bucket bounds with kProtocol.
GLOBE_SANITIZER util::Result<Snapshot> decode_snapshot(
    GLOBE_UNTRUSTED util::BytesView data);

/// Serves one node's registry as `telemetry/scrape`.  Construction tags the
/// registry with node=/role= default labels, so locally exported text
/// (/metrics) and federated snapshots carry identical label sets.
class TelemetryNode {
 public:
  /// `profile`, when set, is folded into `registry` as profile.* counters
  /// right before every scrape reply, so the fleet view carries this node's
  /// crypto/serving cost attribution (DESIGN.md §15) without a separate
  /// collection path.  Null = no profile publishing on scrape.
  TelemetryNode(MetricsRegistry& registry, std::string node, std::string role,
                ProfileRegistry* profile = nullptr);

  void register_with(rpc::ServiceDispatcher& dispatcher);

  /// Wires the node to answer `telemetry/consistency` with this callback's
  /// report (an object server's per-OID epoch/digest/expiry view — see
  /// obs/consistency.hpp).  Must be set before register_with(); nodes
  /// without a source answer kConsistency with kNotFound, so pure
  /// proxies and naming nodes stay auditable-free.
  void set_consistency_source(std::function<ConsistencyReport()> source) {
    consistency_source_ = std::move(source);
  }

  const std::string& node() const { return node_; }
  const std::string& role() const { return role_; }
  MetricsRegistry& registry() { return *registry_; }

 private:
  MetricsRegistry* registry_;
  ProfileRegistry* profile_;
  std::string node_, role_;
  std::function<ConsistencyReport()> consistency_source_;
};

/// One fleet member the aggregator polls.
struct ScrapeTarget {
  std::string node;   // unique node label, e.g. "proxy-paris"
  std::string role;   // role label, e.g. "proxy", "object-server"
  net::Endpoint endpoint;
};

/// Aggregator-side view of one target's scrape health.
struct NodeStatus {
  std::string node;
  std::string role;
  bool stale = true;             // latest round had no usable snapshot
  std::uint64_t scrapes_ok = 0;
  std::uint64_t scrapes_failed = 0;
  util::SimTime last_success = 0;
  std::string last_error;        // most recent failure, "" when none yet
};

class TelemetryAggregator {
 public:
  struct Config {
    std::size_t max_rounds = 128;  // bounded ring of scrape rounds
    /// Registry for the aggregator's own telemetry.* series; nullptr gives
    /// the aggregator a private registry (tagged node=/role= aggregator).
    MetricsRegistry* self_registry = nullptr;
    /// Scrape spans land here; nullptr = obs::global_trace_collector().
    TraceSink* trace_sink = nullptr;
    std::string node = "aggregator";
  };

  TelemetryAggregator();
  explicit TelemetryAggregator(Config config);

  void add_target(ScrapeTarget target) GLOBE_EXCLUDES(mutex_);
  std::size_t target_count() const GLOBE_EXCLUDES(mutex_);

  /// One scrape round over `transport` at transport.now(): calls every
  /// target under a "scrape_round" trace (one child span per target), and
  /// appends the round to the ring.  Thread-compatible like a client flow:
  /// call from one driving thread.
  /// Blocking: one RPC per fleet target.  Targets are snapshotted under
  /// the lock; the RPCs themselves run with no lock held.
  GLOBE_BLOCKING void scrape_round(net::Transport& transport) GLOBE_EXCLUDES(mutex_);

  /// Per-node series of the latest round (fresh nodes only, node=/role=
  /// labels guaranteed) plus cluster-level aggregates with node/role labels
  /// stripped (counter sums, gauge last-write in target order, histogram
  /// bucket merges), plus derived windowed series: for each cluster counter
  /// a `<name>:rate1m` gauge, for each cluster histogram a `<name>:p99_5m`
  /// gauge, when the ring spans enough history.
  Snapshot merged() const GLOBE_EXCLUDES(mutex_);

  std::vector<NodeStatus> nodes() const GLOBE_EXCLUDES(mutex_);

  /// Events/second of a counter series over the trailing window: the value
  /// delta between the latest round and the oldest round inside the window,
  /// divided by the actual time spanned.  nullopt without two such rounds
  /// or when the series is absent.  Labels must match exactly (node= and
  /// role= included).
  std::optional<double> rate(const std::string& name, const Labels& labels,
                             util::SimDuration window) const
      GLOBE_EXCLUDES(mutex_);

  /// Summed counter delta over the trailing window across every series
  /// named `name` whose label set CONTAINS all of `filter` (subset match,
  /// unlike rate()'s exact match) — how the SLO evaluator totals
  /// "proxy.fetches across all outcomes on node X".  A series must appear
  /// in both edge rounds to contribute; negative deltas (counter reset)
  /// drop that series.  nullopt without two spanning rounds or when no
  /// series matched; .seconds is the actual time spanned.
  struct WindowedSum {
    double delta = 0;
    double seconds = 0;
  };
  std::optional<WindowedSum> windowed_delta_sum(const std::string& name,
                                                const Labels& filter,
                                                util::SimDuration window) const
      GLOBE_EXCLUDES(mutex_);

  /// Histogram delta over the trailing window as a sample: bucket counts,
  /// count and sum are the increments between the window's edge rounds;
  /// quantiles are re-estimated from the delta buckets.  nullopt without
  /// two spanning rounds, on a series gap, or on counter-reset (negative
  /// delta).
  std::optional<MetricSample> windowed_histogram(const std::string& name,
                                                 const Labels& labels,
                                                 util::SimDuration window) const
      GLOBE_EXCLUDES(mutex_);

  /// Label sets of every series named `name` in the latest round.
  std::vector<Labels> series_labels(const std::string& name) const
      GLOBE_EXCLUDES(mutex_);

  std::uint64_t rounds() const GLOBE_EXCLUDES(mutex_);
  util::SimTime last_round_time() const GLOBE_EXCLUDES(mutex_);

  MetricsRegistry& self_registry() { return *self_registry_; }

 private:
  struct Round {
    util::SimTime time = 0;
    // node -> labeled snapshot (successful scrapes only).
    std::map<std::string, Snapshot> per_node;
  };

  /// Latest sample of (name, labels) at or before the window start, plus
  /// the latest sample overall.  Used by rate()/windowed_histogram().
  const MetricSample* find_sample_locked(const Round& round,
                                         const std::string& name,
                                         const Labels& labels) const
      GLOBE_REQUIRES(mutex_);
  const Round* window_start_locked(util::SimDuration window) const
      GLOBE_REQUIRES(mutex_);

  Config config_;
  MetricsRegistry* self_registry_;
  std::unique_ptr<MetricsRegistry> owned_registry_;
  Counter* scrape_rounds_;
  Gauge* nodes_fresh_;
  Gauge* nodes_stale_;

  mutable util::Mutex mutex_;
  std::vector<ScrapeTarget> targets_ GLOBE_BOUNDED GLOBE_GUARDED_BY(mutex_);
  std::map<std::string, NodeStatus> status_ GLOBE_BOUNDED GLOBE_GUARDED_BY(mutex_);
  std::deque<Round> ring_ GLOBE_BOUNDED GLOBE_GUARDED_BY(mutex_);  // oldest first
  std::uint64_t round_count_ GLOBE_GUARDED_BY(mutex_) = 0;
};

}  // namespace globe::obs
