// Signed naming records (paper §3.1).
//
// The paper's secure name service is DNSsec extended to store
// *self-certifying OIDs* instead of IP addresses, keeping the name tree
// location-independent.  Two record types exist:
//   * OidRecord        — name -> 160-bit OID, signed by the owning zone.
//   * DelegationRecord — child-zone suffix -> (child zone public key, child
//                        name-server contact), signed by the parent zone.
//                        This is the DS/DNSKEY chain-of-trust link.
// Both carry an absolute expiry; resolvers reject stale records (freshness).
#pragma once

#include <string>

#include "crypto/rsa.hpp"
#include "net/address.hpp"
#include "util/bytes.hpp"
#include "util/clock.hpp"
#include "util/status.hpp"

namespace globe::naming {

/// Self-certifying object identifier: SHA-1 of the object's public key.
constexpr std::size_t kOidSize = 20;

struct OidRecord {
  std::string name;     // fully-qualified, e.g. "news.vu.nl"
  util::Bytes oid;      // kOidSize bytes
  util::SimTime expires = 0;

  util::Bytes serialize() const;
  static util::Result<OidRecord> parse(util::BytesView data);
};

struct DelegationRecord {
  std::string zone;              // delegated suffix, e.g. "vu.nl"
  util::Bytes child_public_key;  // serialized RsaPublicKey of the child zone
  net::Endpoint name_server;     // where the child zone is served
  util::SimTime expires = 0;

  util::Bytes serialize() const;
  static util::Result<DelegationRecord> parse(util::BytesView data);
};

/// A record plus its zone signature (RSA/SHA-256 over the serialized record).
struct SignedBlob {
  util::Bytes record;
  util::Bytes signature;

  util::Bytes serialize() const;
  static util::Result<SignedBlob> parse(util::BytesView data);
};

/// True when `name` equals `zone` or ends with ".zone" (the empty zone — the
/// root — contains every name).
bool name_in_zone(const std::string& name, const std::string& zone);

}  // namespace globe::naming
