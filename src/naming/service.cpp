#include "naming/service.hpp"

#include <stdexcept>

#include "util/serial.hpp"

namespace globe::naming {

using util::Bytes;
using util::BytesView;
using util::ErrorCode;
using util::Result;

Bytes NamingReply::serialize() const {
  util::Writer w;
  w.u8(static_cast<std::uint8_t>(kind));
  w.bytes(blob.serialize());
  return w.take();
}

Result<NamingReply> NamingReply::parse(BytesView data) {
  try {
    util::Reader r(data);
    NamingReply reply;
    std::uint8_t kind = r.u8();
    if (kind != 1 && kind != 2) {
      return Result<NamingReply>(ErrorCode::kProtocol, "bad reply kind");
    }
    reply.kind = static_cast<Kind>(kind);
    auto blob = SignedBlob::parse(r.bytes());
    if (!blob.is_ok()) return blob.status();
    reply.blob = std::move(*blob);
    r.expect_end();
    return reply;
  } catch (const util::SerialError& e) {
    return Result<NamingReply>(ErrorCode::kProtocol, e.what());
  }
}

ZoneAuthority::ZoneAuthority(std::string zone_name, crypto::RsaKeyPair keys)
    : zone_name_(std::move(zone_name)), keys_(std::move(keys)) {}

void ZoneAuthority::add_oid(const std::string& name, BytesView oid,
                            util::SimTime expires) {
  if (!name_in_zone(name, zone_name_)) {
    throw std::invalid_argument("add_oid: '" + name + "' outside zone '" +
                                zone_name_ + "'");
  }
  if (oid.size() != kOidSize) {
    throw std::invalid_argument("add_oid: OID must be 20 bytes");
  }
  OidRecord rec;
  rec.name = name;
  rec.oid.assign(oid.begin(), oid.end());
  rec.expires = expires;
  SignedBlob blob;
  blob.record = rec.serialize();
  blob.signature = crypto::rsa_sign_sha256(keys_.priv, blob.record);
  util::LockGuard lock(mutex_);
  oid_records_[name] = std::move(blob);
}

void ZoneAuthority::remove_name(const std::string& name) {
  util::LockGuard lock(mutex_);
  oid_records_.erase(name);
}

void ZoneAuthority::delegate(const std::string& child_zone,
                             const crypto::RsaPublicKey& child_key,
                             const net::Endpoint& child_server,
                             util::SimTime expires) {
  if (!name_in_zone(child_zone, zone_name_) || child_zone == zone_name_) {
    throw std::invalid_argument("delegate: '" + child_zone +
                                "' is not a proper child of '" + zone_name_ + "'");
  }
  DelegationRecord rec;
  rec.zone = child_zone;
  rec.child_public_key = child_key.serialize();
  rec.name_server = child_server;
  rec.expires = expires;
  SignedBlob blob;
  blob.record = rec.serialize();
  blob.signature = crypto::rsa_sign_sha256(keys_.priv, blob.record);
  util::LockGuard lock(mutex_);
  delegations_[child_zone] = std::move(blob);
}

Result<NamingReply> ZoneAuthority::lookup(const std::string& name) const {
  if (!name_in_zone(name, zone_name_)) {
    return Result<NamingReply>(ErrorCode::kNotFound,
                               "name outside zone " + zone_name_);
  }
  util::LockGuard lock(mutex_);
  if (auto it = oid_records_.find(name); it != oid_records_.end()) {
    NamingReply reply;
    reply.kind = NamingReply::Kind::kAnswer;
    reply.blob = it->second;
    return reply;
  }
  // Longest matching delegated suffix wins.
  const SignedBlob* best = nullptr;
  std::size_t best_len = 0;
  for (const auto& [suffix, blob] : delegations_) {
    if (name_in_zone(name, suffix) && suffix.size() >= best_len) {
      best = &blob;
      best_len = suffix.size();
    }
  }
  if (best != nullptr) {
    NamingReply reply;
    reply.kind = NamingReply::Kind::kReferral;
    reply.blob = *best;
    return reply;
  }
  return Result<NamingReply>(ErrorCode::kNotFound, "no record for " + name);
}

NamingServer::NamingServer(obs::MetricsRegistry* registry) {
  if (registry == nullptr) registry = &obs::global_registry();
  lookups_answer_ = &registry->counter("naming.server.lookups", {{"outcome", "answer"}});
  lookups_referral_ =
      &registry->counter("naming.server.lookups", {{"outcome", "referral"}});
  lookups_miss_ = &registry->counter("naming.server.lookups", {{"outcome", "miss"}});
  zone_key_requests_ = &registry->counter("naming.server.zone_key_requests");
}

void NamingServer::add_zone(std::shared_ptr<ZoneAuthority> zone) {
  util::LockGuard lock(mutex_);
  zones_[zone->zone()] = std::move(zone);
}

void NamingServer::register_with(rpc::ServiceDispatcher& dispatcher) {
  dispatcher.register_method(
      rpc::kNamingService, kLookup,
      [this](net::ServerContext& ctx, BytesView payload) {
        return handle_lookup(ctx, payload);
      });
  dispatcher.register_method(
      rpc::kNamingService, kZonePublicKey,
      [this](net::ServerContext& ctx, BytesView payload) {
        return handle_zone_key(ctx, payload);
      });
}

Result<Bytes> NamingServer::handle_lookup(net::ServerContext&, BytesView payload) {
  std::string zone, name;
  try {
    util::Reader r(payload);
    zone = r.str();
    name = r.str();
    r.expect_end();
  } catch (const util::SerialError& e) {
    return Result<Bytes>(ErrorCode::kProtocol, e.what());
  }
  std::shared_ptr<ZoneAuthority> authority;
  {
    util::LockGuard lock(mutex_);
    auto it = zones_.find(zone);
    if (it == zones_.end()) {
      lookups_miss_->inc();
      return Result<Bytes>(ErrorCode::kNotFound, "zone not served here: " + zone);
    }
    authority = it->second;
  }
  auto reply = authority->lookup(name);
  if (!reply.is_ok()) {
    lookups_miss_->inc();
    return reply.status();
  }
  (reply->kind == NamingReply::Kind::kAnswer ? lookups_answer_
                                             : lookups_referral_)
      ->inc();
  return reply->serialize();
}

Result<Bytes> NamingServer::handle_zone_key(net::ServerContext&, BytesView payload) {
  std::string zone;
  try {
    util::Reader r(payload);
    zone = r.str();
    r.expect_end();
  } catch (const util::SerialError& e) {
    return Result<Bytes>(ErrorCode::kProtocol, e.what());
  }
  zone_key_requests_->inc();
  util::LockGuard lock(mutex_);
  auto it = zones_.find(zone);
  if (it == zones_.end()) {
    return Result<Bytes>(ErrorCode::kNotFound, "zone not served here: " + zone);
  }
  return it->second->public_key().serialize();
}

}  // namespace globe::naming
