#include "naming/records.hpp"

#include "util/serial.hpp"

namespace globe::naming {

using util::Bytes;
using util::BytesView;
using util::ErrorCode;
using util::Result;

Bytes OidRecord::serialize() const {
  util::Writer w;
  w.u8(1);  // record type tag, bound under the signature
  w.str(name);
  w.bytes(oid);
  w.u64(expires);
  return w.take();
}

Result<OidRecord> OidRecord::parse(BytesView data) {
  try {
    util::Reader r(data);
    if (r.u8() != 1) return Result<OidRecord>(ErrorCode::kProtocol, "not an OID record");
    OidRecord rec;
    rec.name = r.str();
    rec.oid = r.bytes();
    rec.expires = r.u64();
    r.expect_end();
    if (rec.oid.size() != kOidSize) {
      return Result<OidRecord>(ErrorCode::kProtocol, "OID must be 20 bytes");
    }
    return rec;
  } catch (const util::SerialError& e) {
    return Result<OidRecord>(ErrorCode::kProtocol, e.what());
  }
}

Bytes DelegationRecord::serialize() const {
  util::Writer w;
  w.u8(2);
  w.str(zone);
  w.bytes(child_public_key);
  w.u32(name_server.host.value);
  w.u16(name_server.port);
  w.u64(expires);
  return w.take();
}

Result<DelegationRecord> DelegationRecord::parse(BytesView data) {
  try {
    util::Reader r(data);
    if (r.u8() != 2) {
      return Result<DelegationRecord>(ErrorCode::kProtocol, "not a delegation record");
    }
    DelegationRecord rec;
    rec.zone = r.str();
    rec.child_public_key = r.bytes();
    rec.name_server.host.value = r.u32();
    rec.name_server.port = r.u16();
    rec.expires = r.u64();
    r.expect_end();
    return rec;
  } catch (const util::SerialError& e) {
    return Result<DelegationRecord>(ErrorCode::kProtocol, e.what());
  }
}

Bytes SignedBlob::serialize() const {
  util::Writer w;
  w.bytes(record);
  w.bytes(signature);
  return w.take();
}

Result<SignedBlob> SignedBlob::parse(BytesView data) {
  try {
    util::Reader r(data);
    SignedBlob blob;
    blob.record = r.bytes();
    blob.signature = r.bytes();
    r.expect_end();
    return blob;
  } catch (const util::SerialError& e) {
    return Result<SignedBlob>(ErrorCode::kProtocol, e.what());
  }
}

bool name_in_zone(const std::string& name, const std::string& zone) {
  if (zone.empty()) return true;  // root
  if (name == zone) return true;
  if (name.size() > zone.size() &&
      name.compare(name.size() - zone.size(), zone.size(), zone) == 0 &&
      name[name.size() - zone.size() - 1] == '.') {
    return true;
  }
  return false;
}

}  // namespace globe::naming
