// Zone authorities and name servers (paper §2.1.1, §3.1).
//
// A ZoneAuthority holds a zone's signing key and its records; a NamingServer
// exposes one or more zones over RPC.  Queries return either a signed
// answer (OID record) or a signed referral (delegation to a child zone's
// server).  The resolver in resolver.hpp walks referrals from a configured
// trust anchor, exactly like a validating DNSsec resolver.
//
// Authenticated denial of existence (NSEC) is out of scope, as it was for
// the paper: a missing name yields an unsigned NOT_FOUND, which an attacker
// could forge into (at worst) denial of service — consistent with the
// paper's threat analysis of the lookup services.
#pragma once

#include <map>
#include <memory>
#include <string>

#include "util/mutex.hpp"

#include "crypto/rsa.hpp"
#include "naming/records.hpp"
#include "net/transport.hpp"
#include "obs/metrics.hpp"
#include "rpc/rpc.hpp"
#include "util/taint_annotations.hpp"

namespace globe::naming {

/// RPC method ids under rpc::kNamingService.
enum NamingMethod : std::uint16_t {
  kLookup = 1,       // request: str zone, str name -> NamingReply
  kZonePublicKey = 2,  // request: str zone -> bytes (serialized RsaPublicKey)
};

/// Reply to kLookup.
struct NamingReply {
  enum class Kind : std::uint8_t { kAnswer = 1, kReferral = 2 };
  Kind kind = Kind::kAnswer;
  SignedBlob blob;  // OidRecord (answer) or DelegationRecord (referral)

  util::Bytes serialize() const;
  static util::Result<NamingReply> parse(util::BytesView data);
};

/// The administrative side of one zone: key custody, record signing.
class ZoneAuthority {
 public:
  ZoneAuthority(std::string zone_name, crypto::RsaKeyPair keys);

  const std::string& zone() const { return zone_name_; }
  const crypto::RsaPublicKey& public_key() const { return keys_.pub; }

  /// Publishes (or refreshes) name -> OID valid until `expires`.  `name`
  /// must fall inside this zone.
  void add_oid(const std::string& name, util::BytesView oid, util::SimTime expires);
  void remove_name(const std::string& name);

  /// Delegates a child suffix to another zone key + name server.
  void delegate(const std::string& child_zone, const crypto::RsaPublicKey& child_key,
                const net::Endpoint& child_server, util::SimTime expires);

  /// Longest-match lookup inside this zone.
  [[nodiscard]] util::Result<NamingReply> lookup(const std::string& name) const
      GLOBE_EXCLUDES(mutex_);

 private:
  std::string zone_name_;
  crypto::RsaKeyPair keys_;
  mutable util::Mutex mutex_;
  // full name -> signed record / child suffix -> signed delegation
  std::map<std::string, SignedBlob> oid_records_ GLOBE_GUARDED_BY(mutex_);
  std::map<std::string, SignedBlob> delegations_ GLOBE_GUARDED_BY(mutex_);
};

/// Serves one or more zones on an RPC dispatcher.
class NamingServer {
 public:
  /// `registry` receives the naming.server.* series (lookups by outcome,
  /// zone-key requests); nullptr means the process-wide
  /// obs::global_registry().
  explicit NamingServer(obs::MetricsRegistry* registry = nullptr);

  void add_zone(std::shared_ptr<ZoneAuthority> zone);

  /// Registers kLookup/kZonePublicKey on `dispatcher`.
  void register_with(rpc::ServiceDispatcher& dispatcher);

 private:
  // Wire payloads from arbitrary callers: tainted at entry.  Replies are
  // signed with the zone key, so nothing untrusted flows into an answer.
  util::Result<util::Bytes> handle_lookup(net::ServerContext& ctx,
                                          GLOBE_UNTRUSTED util::BytesView payload);
  util::Result<util::Bytes> handle_zone_key(net::ServerContext& ctx,
                                            GLOBE_UNTRUSTED util::BytesView payload);

  util::Mutex mutex_;
  std::map<std::string, std::shared_ptr<ZoneAuthority>> zones_
      GLOBE_GUARDED_BY(mutex_);
  obs::Counter* lookups_answer_;
  obs::Counter* lookups_referral_;
  obs::Counter* lookups_miss_;
  obs::Counter* zone_key_requests_;
};

}  // namespace globe::naming
