// Validating resolver: walks the zone tree from a trust anchor, verifying
// every signature and expiry, and returns the self-certifying OID bound to
// a name (paper §3.1.2).
#pragma once

#include <map>
#include <string>

#include "crypto/rsa.hpp"
#include "naming/records.hpp"
#include "net/transport.hpp"
#include "obs/metrics.hpp"
#include "util/taint_annotations.hpp"

namespace globe::naming {

class SecureResolver {
 public:
  /// `anchor_key` is the root zone's public key configured out of band —
  /// the single trust anchor, exactly like a DNSsec root key.  `registry`
  /// receives the naming.* client series; nullptr means the process-wide
  /// obs::global_registry().
  SecureResolver(net::Transport& transport, net::Endpoint root_server,
                 crypto::RsaPublicKey anchor_key,
                 obs::MetricsRegistry* registry = nullptr);

  /// Resolves a name to its (verified, fresh) OID.  Security failures map
  /// to the typed codes: BAD_SIGNATURE, EXPIRED, WRONG_ELEMENT (record
  /// names a different name than asked), PROTOCOL.  A successful result is
  /// a sanitized value: every record on the walk was signature-checked
  /// against the chain rooted in the configured trust anchor.
  GLOBE_SANITIZER util::Result<util::Bytes> resolve(const std::string& name);

  /// Enables client-side positive caching of verified answers.
  void set_cache_enabled(bool enabled) { cache_enabled_ = enabled; }
  std::size_t cache_size() const { return cache_.size(); }
  void clear_cache() { cache_.clear(); }

  /// Verified-signature counter (used by the security-overhead benchmarks).
  std::size_t signatures_verified() const { return signatures_verified_; }

 private:
  util::Result<util::Bytes> resolve_walk(const std::string& name);

  struct CacheEntry {
    util::Bytes oid;
    util::SimTime expires;
  };

  net::Transport* transport_;
  net::Endpoint root_server_;
  crypto::RsaPublicKey anchor_;
  bool cache_enabled_ = false;
  std::map<std::string, CacheEntry> cache_;
  std::size_t signatures_verified_ = 0;
  // Registry series: resolves by outcome, cache hits, referral hops,
  // signatures verified.
  obs::Counter* resolves_ok_;
  obs::Counter* resolves_failed_;
  obs::Counter* cache_hits_;
  obs::Counter* referrals_;
  obs::Counter* signatures_counter_;
};

}  // namespace globe::naming
