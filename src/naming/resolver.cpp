#include "naming/resolver.hpp"

#include "naming/service.hpp"
#include "obs/profile.hpp"
#include "rpc/rpc.hpp"
#include "util/serial.hpp"

namespace globe::naming {

using util::Bytes;
using util::BytesView;
using util::ErrorCode;
using util::Result;

SecureResolver::SecureResolver(net::Transport& transport, net::Endpoint root_server,
                               crypto::RsaPublicKey anchor_key,
                               obs::MetricsRegistry* registry)
    : transport_(&transport), root_server_(root_server), anchor_(std::move(anchor_key)) {
  if (registry == nullptr) registry = &obs::global_registry();
  resolves_ok_ = &registry->counter("naming.resolves", {{"outcome", "ok"}});
  resolves_failed_ = &registry->counter("naming.resolves", {{"outcome", "error"}});
  cache_hits_ = &registry->counter("naming.cache_hits");
  referrals_ = &registry->counter("naming.referrals");
  signatures_counter_ = &registry->counter("naming.signatures_verified");
}

Result<Bytes> SecureResolver::resolve(const std::string& name) {
  GLOBE_PROFILE_SCOPE("naming.resolve");
  if (cache_enabled_) {
    auto it = cache_.find(name);
    if (it != cache_.end()) {
      if (it->second.expires > transport_->now()) {
        cache_hits_->inc();
        return it->second.oid;
      }
      cache_.erase(it);
    }
  }
  auto result = resolve_walk(name);
  (result.is_ok() ? resolves_ok_ : resolves_failed_)->inc();
  return result;
}

Result<Bytes> SecureResolver::resolve_walk(const std::string& name) {
  std::string zone;  // start at the root
  net::Endpoint server = root_server_;
  crypto::RsaPublicKey zone_key = anchor_;

  // A referral chain longer than any sane zone tree indicates a loop.
  constexpr int kMaxReferrals = 16;
  for (int depth = 0; depth < kMaxReferrals; ++depth) {
    util::Writer q;
    q.str(zone);
    q.str(name);
    rpc::RpcClient client(*transport_, server);
    auto raw = client.call(rpc::kNamingService, kLookup, q.buffer());
    if (!raw.is_ok()) return raw.status();

    auto reply = NamingReply::parse(*raw);
    if (!reply.is_ok()) return reply.status();

    // Verify the zone signature over the record (one public-key op).
    transport_->charge(net::CpuOp::kRsaVerify, 1);
    ++signatures_verified_;
    signatures_counter_->inc();
    if (!crypto::rsa_verify_sha256(zone_key, reply->blob.record,
                                   reply->blob.signature)) {
      return Result<Bytes>(ErrorCode::kBadSignature,
                           "zone '" + zone + "' record signature invalid");
    }

    if (reply->kind == NamingReply::Kind::kAnswer) {
      auto rec = OidRecord::parse(reply->blob.record);
      if (!rec.is_ok()) return rec.status();
      if (rec->name != name) {
        return Result<Bytes>(ErrorCode::kWrongElement,
                             "answer names '" + rec->name + "', asked '" + name + "'");
      }
      if (rec->expires <= transport_->now()) {
        return Result<Bytes>(ErrorCode::kExpired, "OID record expired");
      }
      if (cache_enabled_) {
        cache_[name] = CacheEntry{rec->oid, rec->expires};
      }
      return rec->oid;
    }

    // Referral: descend into the child zone.
    referrals_->inc();
    auto del = DelegationRecord::parse(reply->blob.record);
    if (!del.is_ok()) return del.status();
    if (!name_in_zone(name, del->zone) || !name_in_zone(del->zone, zone) ||
        del->zone == zone) {
      return Result<Bytes>(ErrorCode::kWrongElement,
                           "referral zone '" + del->zone + "' does not cover name");
    }
    if (del->expires <= transport_->now()) {
      return Result<Bytes>(ErrorCode::kExpired, "delegation expired");
    }
    auto child_key = crypto::RsaPublicKey::parse(del->child_public_key);
    if (!child_key.is_ok()) return child_key.status();
    zone = del->zone;
    zone_key = std::move(*child_key);
    server = del->name_server;
  }
  return Result<Bytes>(ErrorCode::kProtocol, "referral chain too deep");
}

}  // namespace globe::naming
