// RPC framing and dispatch over the Transport abstraction.
//
// Wire format: u16 service id, u16 method id, then the method payload.
// A ServiceDispatcher multiplexes any number of (service, method) handlers
// behind one bound endpoint — this is how a Globe object server exposes the
// GlobeDoc access interface, the security interface and the admin interface
// on a single contact address (paper §2.1.3, §3).
//
// Trace propagation (DESIGN.md §10): a request MAY carry one optional
// framing header before the service id —
//
//   u16 0xFFFF (marker), u8 version (=1), 25-byte obs::TraceContext
//
// RpcClient injects the calling thread's current trace context when one is
// in force; ServiceDispatcher strips the header and opens a server-side
// span ("rpc:<service>/<method>") as a child of the caller's span, so a
// proxy fetch and the work it causes on every serving host share one trace
// id.  The marker can never collide with a real first field: service ids
// are small, so a legacy request's first u16 is never 0xFFFF.  Untagged
// requests (old peers, raw probes) dispatch exactly as before.  The context
// length is fixed per version, so a marker with any other version byte is
// rejected as a protocol error — there is no way to skip an unknown layout.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>

#include "util/mutex.hpp"

#include "net/transport.hpp"
#include "obs/trace.hpp"
#include "util/bytes.hpp"
#include "util/serial.hpp"
#include "util/taint_annotations.hpp"
#include "util/bounds_annotations.hpp"
#include "util/status.hpp"
#include "util/thread_annotations.hpp"

namespace globe::rpc {

/// Well-known service ids.
enum ServiceId : std::uint16_t {
  kNamingService = 1,
  kLocationService = 2,
  kGlobeDocAccess = 3,    // page-element retrieval (untrusted path)
  kGlobeDocSecurity = 4,  // public key / certificates (paper §3.1.2)
  kGlobeDocAdmin = 5,     // replica management, keystore-ACL'd (paper §2.1.3)
  kHttpGateway = 6,       // baseline static HTTP server
  kGlobeDocDynamic = 7,   // audited dynamic content (paper §6 extension)
  kTelemetryService = 8,  // per-node metrics scrape (obs/telemetry.hpp)
};

using MethodFn =
    std::function<util::Result<util::Bytes>(net::ServerContext&, util::BytesView)>;

/// Marker u16 that introduces the optional trace header (see file comment).
inline constexpr std::uint16_t kTraceMarker = 0xFFFF;
inline constexpr std::uint8_t kTraceVersion = 1;

/// Span name for the server side of an RPC: "rpc:<service>/<method>", with
/// well-known service ids rendered by name ("rpc:gd.access/3").
std::string rpc_span_name(std::uint16_t service, std::uint16_t method);

/// Routes (service, method) to registered handlers.  Registration is done
/// at setup time; dispatch is thread-safe.
class ServiceDispatcher {
 public:
  void register_method(std::uint16_t service, std::uint16_t method, MethodFn fn)
      GLOBE_EXCLUDES(mutex_);

  /// Completed server-side span fragments go to `sink`; nullptr (the
  /// default) means obs::global_trace_collector().  Setup-time only.
  void set_trace_sink(obs::TraceSink* sink) GLOBE_EXCLUDES(mutex_);

  /// Host label stamped on server-side spans.  Empty (the default) derives
  /// "host<N>" from the serving context.  Setup-time only.
  void set_trace_host(std::string host) GLOBE_EXCLUDES(mutex_);

  /// Adapter to bind on a SimNet endpoint or TcpServer.
  net::MessageHandler handler();

  util::Result<util::Bytes> dispatch(net::ServerContext& ctx,
                                     util::BytesView request) const
      GLOBE_EXCLUDES(mutex_);

 private:
  mutable util::Mutex mutex_;
  std::map<std::pair<std::uint16_t, std::uint16_t>, MethodFn> methods_
      GLOBE_BOUNDED GLOBE_GUARDED_BY(mutex_);
  obs::TraceSink* trace_sink_ GLOBE_GUARDED_BY(mutex_) = nullptr;
  std::string trace_host_ GLOBE_GUARDED_BY(mutex_);
};

/// Client stub for one remote endpoint.
class RpcClient {
 public:
  /// Constructing a stub is the "dial" of a contact address: the endpoint
  /// must come from a verified record (a signed delegation, a verified
  /// binding) — untrusted addresses reaching here are flagged by the taint
  /// pass and need an explicit justification in tools/taint_baseline.txt.
  RpcClient(net::Transport& transport, GLOBE_TRUSTED_SINK net::Endpoint endpoint)
      : transport_(&transport), endpoint_(endpoint) {}

  /// Reply payloads originate at a remote, possibly malicious, party.
  /// Blocking: one full round trip on the underlying transport.
  GLOBE_BLOCKING GLOBE_UNTRUSTED util::Result<util::Bytes> call(std::uint16_t service,
                                                 std::uint16_t method,
                                                 util::BytesView payload) const;

  const net::Endpoint& endpoint() const { return endpoint_; }
  net::Transport& transport() const { return *transport_; }

 private:
  net::Transport* transport_;
  net::Endpoint endpoint_;
};

}  // namespace globe::rpc
