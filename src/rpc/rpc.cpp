#include "rpc/rpc.hpp"

#include <stdexcept>

#include "obs/collector.hpp"

namespace globe::rpc {

using util::Bytes;
using util::BytesView;
using util::ErrorCode;
using util::Result;

namespace {

const char* service_name(std::uint16_t service) {
  switch (service) {
    case kNamingService: return "naming";
    case kLocationService: return "location";
    case kGlobeDocAccess: return "gd.access";
    case kGlobeDocSecurity: return "gd.security";
    case kGlobeDocAdmin: return "gd.admin";
    case kHttpGateway: return "http";
    case kGlobeDocDynamic: return "gd.dynamic";
    case kTelemetryService: return "telemetry";
  }
  return nullptr;
}

}  // namespace

std::string rpc_span_name(std::uint16_t service, std::uint16_t method) {
  std::string name = "rpc:";
  if (const char* known = service_name(service)) {
    name += known;
  } else {
    name += std::to_string(service);
  }
  name += '/';
  name += std::to_string(method);
  return name;
}

void ServiceDispatcher::register_method(std::uint16_t service, std::uint16_t method,
                                        MethodFn fn) {
  util::LockGuard lock(mutex_);
  auto [it, inserted] = methods_.emplace(std::make_pair(service, method), std::move(fn));
  (void)it;
  if (!inserted) {
    throw std::logic_error("ServiceDispatcher: duplicate method " +
                           std::to_string(service) + "/" + std::to_string(method));
  }
}

void ServiceDispatcher::set_trace_sink(obs::TraceSink* sink) {
  util::LockGuard lock(mutex_);
  trace_sink_ = sink;
}

void ServiceDispatcher::set_trace_host(std::string host) {
  util::LockGuard lock(mutex_);
  trace_host_ = std::move(host);
}

Result<Bytes> ServiceDispatcher::dispatch(net::ServerContext& ctx,
                                          BytesView request) const {
  std::uint16_t service, method;
  util::BytesView payload;
  obs::TraceContext caller;
  try {
    util::Reader r(request);
    std::uint16_t first = r.u16();
    if (first == kTraceMarker) {
      // Optional trace header: version byte, then the caller's context.
      // Legacy peers never produce the marker (service ids are small), so
      // untagged requests take the plain path below unchanged.  The context
      // length is version-defined, so an unknown version cannot be framed
      // past safely and is rejected rather than guessed at.
      std::uint8_t version = r.u8();
      if (version != kTraceVersion) {
        return Result<Bytes>(ErrorCode::kProtocol,
                             "unsupported trace header version " +
                                 std::to_string(version));
      }
      caller = obs::TraceContext::decode(r);
      service = r.u16();
    } else {
      service = first;
    }
    method = r.u16();
    // Slice only after the Reader bounds-checked the whole header:
    // subspan(off) with off > size() is UB, so a truncated frame must throw
    // above before any offset is formed.
    payload = request.subspan(request.size() - r.remaining());
  } catch (const util::SerialError& e) {
    return Result<Bytes>(ErrorCode::kProtocol, e.what());
  }
  MethodFn fn;
  obs::TraceSink* sink;
  std::string host;
  {
    util::LockGuard lock(mutex_);
    auto it = methods_.find({service, method});
    if (it == methods_.end()) {
      return Result<Bytes>(ErrorCode::kNotFound,
                           "no method " + std::to_string(service) + "/" +
                               std::to_string(method));
    }
    fn = it->second;
    sink = trace_sink_;
    host = trace_host_;
  }

  if (!caller.valid() || !caller.sampled) return fn(ctx, payload);

  // Open the server-side span as a child of the caller's innermost span.
  // SimNet runs handlers inline on the caller's thread; the tracer saves
  // the caller's thread-local context at root open and restores it when the
  // root closes, so client-side spans resume correctly afterwards.
  obs::Tracer tracer([&ctx] { return ctx.now(); });
  tracer.set_host(host.empty() ? "host" + std::to_string(ctx.local_host().value)
                               : host);
  tracer.set_sink(sink != nullptr ? sink : &obs::global_trace_collector());
  tracer.adopt(caller);
  auto span = tracer.span(rpc_span_name(service, method));
  return fn(ctx, payload);
}

net::MessageHandler ServiceDispatcher::handler() {
  return [this](net::ServerContext& ctx, BytesView request) {
    return dispatch(ctx, request);
  };
}

Result<Bytes> RpcClient::call(std::uint16_t service, std::uint16_t method,
                              BytesView payload) const {
  util::Writer w;
  obs::TraceContext trace = obs::current_trace_context();
  if (trace.valid() && trace.sampled) {
    w.u16(kTraceMarker);
    w.u8(kTraceVersion);
    trace.encode(w);
  }
  w.u16(service);
  w.u16(method);
  w.raw(payload);
  return transport_->call(endpoint_, w.buffer());
}

}  // namespace globe::rpc
