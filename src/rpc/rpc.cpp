#include "rpc/rpc.hpp"

#include <stdexcept>

namespace globe::rpc {

using util::Bytes;
using util::BytesView;
using util::ErrorCode;
using util::Result;

void ServiceDispatcher::register_method(std::uint16_t service, std::uint16_t method,
                                        MethodFn fn) {
  util::LockGuard lock(mutex_);
  auto [it, inserted] = methods_.emplace(std::make_pair(service, method), std::move(fn));
  (void)it;
  if (!inserted) {
    throw std::logic_error("ServiceDispatcher: duplicate method " +
                           std::to_string(service) + "/" + std::to_string(method));
  }
}

Result<Bytes> ServiceDispatcher::dispatch(net::ServerContext& ctx,
                                          BytesView request) const {
  std::uint16_t service, method;
  util::BytesView payload;
  try {
    util::Reader r(request);
    service = r.u16();
    method = r.u16();
    payload = request.subspan(4);
  } catch (const util::SerialError& e) {
    return Result<Bytes>(ErrorCode::kProtocol, e.what());
  }
  MethodFn fn;
  {
    util::LockGuard lock(mutex_);
    auto it = methods_.find({service, method});
    if (it == methods_.end()) {
      return Result<Bytes>(ErrorCode::kNotFound,
                           "no method " + std::to_string(service) + "/" +
                               std::to_string(method));
    }
    fn = it->second;
  }
  return fn(ctx, payload);
}

net::MessageHandler ServiceDispatcher::handler() {
  return [this](net::ServerContext& ctx, BytesView request) {
    return dispatch(ctx, request);
  };
}

Result<Bytes> RpcClient::call(std::uint16_t service, std::uint16_t method,
                              BytesView payload) const {
  util::Writer w;
  w.u16(service);
  w.u16(method);
  w.raw(payload);
  return transport_->call(endpoint_, w.buffer());
}

}  // namespace globe::rpc
