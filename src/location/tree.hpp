// Globe Location Service: a distributed search tree mapping OIDs to replica
// contact addresses (paper §2.1.2).
//
// The world is divided into hierarchical domains (site ⊂ region ⊂ ... ⊂
// root).  A replica's contact address is stored at its site node; every
// enclosing domain up to the root stores a *pointer* to the child domain
// that leads to it.  Lookups use expanding rings: the client asks its local
// site, then each enclosing domain in turn; the first node holding a
// pointer resolves it downward (server-side recursion along tree edges,
// which is acyclic) and returns the contact addresses.
//
// The Location Service is deliberately *untrusted* (paper §3.1.2): records
// carry no signatures.  A malicious node can cause at most denial of
// service, because clients verify everything they fetch from replicas via
// the self-certifying OID and the integrity certificate.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "net/transport.hpp"
#include "obs/metrics.hpp"
#include "rpc/rpc.hpp"
#include "util/bytes.hpp"
#include "util/mutex.hpp"
#include "util/taint_annotations.hpp"

namespace globe::location {

/// RPC method ids under rpc::kLocationService.
enum LocationMethod : std::uint16_t {
  kLookup = 1,         // {oid} -> LookupReply
  kInsert = 2,         // {oid, endpoint} (site nodes only)
  kRemove = 3,         // {oid, endpoint}
  kInsertPointer = 4,  // {oid, child domain}   (tree-internal)
  kRemovePointer = 5,  // {oid, child domain}   (tree-internal)
};

/// Protocol ceiling on replica addresses per lookup reply.  parse() rejects
/// replies claiming more as a protocol error before allocating for them.
inline constexpr std::size_t kMaxLookupAddresses = 64;

struct LookupReply {
  bool found = false;
  std::vector<net::Endpoint> addresses;  // when found
  bool has_parent = false;
  net::Endpoint parent;                  // next ring when not found

  util::Bytes serialize() const;
  static util::Result<LookupReply> parse(util::BytesView data);
};

/// One node of the search tree.  Site nodes store contact addresses;
/// interior nodes store pointers to children.
class LocationNode {
 public:
  /// `registry` receives the location.node.* series (labeled with this
  /// node's domain); nullptr means the process-wide obs::global_registry().
  LocationNode(std::string domain, bool is_site,
               obs::MetricsRegistry* registry = nullptr);

  const std::string& domain() const { return domain_; }
  bool is_site() const { return is_site_; }

  /// Wires the tree: parent endpoint (absent for the root) and named
  /// children (interior nodes).
  void set_parent(const net::Endpoint& parent);
  void add_child(const std::string& child_domain, const net::Endpoint& child);

  void register_with(rpc::ServiceDispatcher& dispatcher);

  /// Diagnostics for the location-service benchmarks.
  std::size_t lookups_served() const GLOBE_EXCLUDES(mutex_);
  std::size_t records_stored() const GLOBE_EXCLUDES(mutex_);

 private:
  // Wire payloads from arbitrary callers: tainted at entry.  The stored
  // records stay untrusted by design (§3.1.2) — there is no sanitizer here,
  // and no trusted sink either: consumers re-verify whatever they fetch.
  util::Result<util::Bytes> handle_lookup(net::ServerContext& ctx,
                                          GLOBE_UNTRUSTED util::BytesView payload);
  util::Result<util::Bytes> handle_insert(net::ServerContext& ctx,
                                          GLOBE_UNTRUSTED util::BytesView payload);
  util::Result<util::Bytes> handle_remove(net::ServerContext& ctx,
                                          GLOBE_UNTRUSTED util::BytesView payload);
  util::Result<util::Bytes> handle_insert_pointer(
      net::ServerContext& ctx, GLOBE_UNTRUSTED util::BytesView payload);
  util::Result<util::Bytes> handle_remove_pointer(
      net::ServerContext& ctx, GLOBE_UNTRUSTED util::BytesView payload);

  /// Resolves a pointer downward to concrete addresses (interior nodes).
  util::Result<std::vector<net::Endpoint>> resolve_down(net::ServerContext& ctx,
                                                        const util::Bytes& oid);

  std::string domain_;
  bool is_site_;
  bool has_parent_ = false;
  net::Endpoint parent_;
  std::map<std::string, net::Endpoint> children_;

  mutable util::Mutex mutex_;
  // Site: OID -> contact addresses.  Interior: OID -> child domains.
  std::map<util::Bytes, std::set<net::Endpoint>> addresses_ GLOBE_GUARDED_BY(mutex_);
  std::map<util::Bytes, std::set<std::string>> pointers_ GLOBE_GUARDED_BY(mutex_);
  std::size_t lookups_served_ GLOBE_GUARDED_BY(mutex_) = 0;
  // Registry series, labeled by this node's domain.
  obs::Counter* lookups_counter_;
  obs::Counter* lookup_hits_;
  obs::Counter* inserts_counter_;
  obs::Counter* removes_counter_;
};

/// Client-side expanding-ring lookup and replica (de)registration.
class LocationClient {
 public:
  /// `registry` receives the location.client.* series; nullptr means the
  /// process-wide obs::global_registry().
  LocationClient(net::Transport& transport, net::Endpoint local_site,
                 obs::MetricsRegistry* registry = nullptr);

  /// Expanding-ring search from the local site.  NOT_FOUND when the OID is
  /// unknown all the way to the root.  Location records carry no signatures
  /// (paper §3.1.2): the addresses returned are untrusted hints that the
  /// caller may only dial speculatively — every byte fetched from them must
  /// still pass the self-certifying/integrity checks.
  GLOBE_UNTRUSTED util::Result<std::vector<net::Endpoint>> lookup(util::BytesView oid);

  /// Registers / deregisters a contact address at a specific site node.
  util::Status insert(const net::Endpoint& site, util::BytesView oid,
                      const net::Endpoint& address);
  util::Status remove(const net::Endpoint& site, util::BytesView oid,
                      const net::Endpoint& address);

  /// Rings climbed by the last lookup (1 = answered at the local site).
  std::size_t last_rings() const { return last_rings_; }

 private:
  net::Transport* transport_;
  net::Endpoint local_site_;
  std::size_t last_rings_ = 0;
  obs::Counter* lookups_counter_;
  obs::Histogram* rings_histogram_;
};

}  // namespace globe::location
