// Convenience builder wiring a LocationNode tree onto a SimNet.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "location/tree.hpp"
#include "net/simnet.hpp"

namespace globe::location {

struct DomainSpec {
  std::string name;    // unique domain name, e.g. "site-ams" or "region-eu"
  std::string parent;  // empty for the root
  net::HostId host;    // host serving this node
  std::uint16_t port;  // endpoint port on that host
  bool is_site = false;
};

/// Owns the nodes and dispatchers of one location tree.
class LocationTree {
 public:
  /// Builds and binds the tree.  Parents must precede children in `specs`.
  /// Throws std::invalid_argument on dangling parents or duplicate names.
  /// `registry` receives every node's location.node.* series; nullptr means
  /// the process-wide obs::global_registry().
  LocationTree(net::SimNet& net, const std::vector<DomainSpec>& specs,
               obs::MetricsRegistry* registry = nullptr);

  net::Endpoint endpoint(const std::string& domain) const;
  LocationNode& node(const std::string& domain);
  const LocationNode& node(const std::string& domain) const;

 private:
  struct Entry {
    std::unique_ptr<LocationNode> node;
    std::unique_ptr<rpc::ServiceDispatcher> dispatcher;
    net::Endpoint endpoint;
  };
  std::map<std::string, Entry> entries_;
};

}  // namespace globe::location
