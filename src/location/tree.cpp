#include "location/tree.hpp"

#include <algorithm>

#include "obs/profile.hpp"
#include "util/serial.hpp"

namespace globe::location {

using util::Bytes;
using util::BytesView;
using util::ErrorCode;
using util::Result;
using util::Status;

namespace {

void write_endpoint(util::Writer& w, const net::Endpoint& ep) {
  w.u32(ep.host.value);
  w.u16(ep.port);
}

net::Endpoint read_endpoint(util::Reader& r) {
  net::Endpoint ep;
  ep.host.value = r.u32();
  ep.port = r.u16();
  return ep;
}

struct OidEndpoint {
  Bytes oid;
  net::Endpoint address;
};

Bytes encode_oid_endpoint(BytesView oid, const net::Endpoint& ep) {
  util::Writer w;
  w.bytes(oid);
  write_endpoint(w, ep);
  return w.take();
}

Result<OidEndpoint> decode_oid_endpoint(BytesView payload) {
  try {
    util::Reader r(payload);
    OidEndpoint out;
    out.oid = r.bytes();
    out.address = read_endpoint(r);
    r.expect_end();
    return out;
  } catch (const util::SerialError& e) {
    return Result<OidEndpoint>(ErrorCode::kProtocol, e.what());
  }
}

struct OidChild {
  Bytes oid;
  std::string child;
};

Bytes encode_oid_child(BytesView oid, const std::string& child) {
  util::Writer w;
  w.bytes(oid);
  w.str(child);
  return w.take();
}

Result<OidChild> decode_oid_child(BytesView payload) {
  try {
    util::Reader r(payload);
    OidChild out;
    out.oid = r.bytes();
    out.child = r.str();
    r.expect_end();
    return out;
  } catch (const util::SerialError& e) {
    return Result<OidChild>(ErrorCode::kProtocol, e.what());
  }
}

}  // namespace

Bytes LookupReply::serialize() const {
  util::Writer w;
  w.u8(found ? 1 : 0);
  w.u32(static_cast<std::uint32_t>(addresses.size()));
  for (const auto& a : addresses) write_endpoint(w, a);
  w.u8(has_parent ? 1 : 0);
  write_endpoint(w, parent);
  return w.take();
}

Result<LookupReply> LookupReply::parse(BytesView data) {
  try {
    util::Reader r(data);
    LookupReply reply;
    reply.found = r.u8() != 0;
    std::uint32_t n = util::checked_count(
        r.u32(), static_cast<std::uint32_t>(kMaxLookupAddresses));
    reply.addresses.reserve(n);
    for (std::uint32_t i = 0; i < n; ++i) reply.addresses.push_back(read_endpoint(r));
    reply.has_parent = r.u8() != 0;
    reply.parent = read_endpoint(r);
    r.expect_end();
    return reply;
  } catch (const util::SerialError& e) {
    return Result<LookupReply>(ErrorCode::kProtocol, e.what());
  }
}

LocationNode::LocationNode(std::string domain, bool is_site,
                           obs::MetricsRegistry* registry)
    : domain_(std::move(domain)), is_site_(is_site) {
  if (registry == nullptr) registry = &obs::global_registry();
  obs::Labels labels{{"domain", domain_}};
  lookups_counter_ = &registry->counter("location.node.lookups", labels);
  lookup_hits_ = &registry->counter("location.node.lookup_hits", labels);
  inserts_counter_ = &registry->counter("location.node.inserts", labels);
  removes_counter_ = &registry->counter("location.node.removes", labels);
}

void LocationNode::set_parent(const net::Endpoint& parent) {
  has_parent_ = true;
  parent_ = parent;
}

void LocationNode::add_child(const std::string& child_domain,
                             const net::Endpoint& child) {
  children_[child_domain] = child;
}

void LocationNode::register_with(rpc::ServiceDispatcher& dispatcher) {
  auto bindm = [&](std::uint16_t method,
                   Result<Bytes> (LocationNode::*fn)(net::ServerContext&, BytesView)) {
    dispatcher.register_method(rpc::kLocationService, method,
                               [this, fn](net::ServerContext& ctx, BytesView payload) {
                                 return (this->*fn)(ctx, payload);
                               });
  };
  bindm(kLookup, &LocationNode::handle_lookup);
  bindm(kInsert, &LocationNode::handle_insert);
  bindm(kRemove, &LocationNode::handle_remove);
  bindm(kInsertPointer, &LocationNode::handle_insert_pointer);
  bindm(kRemovePointer, &LocationNode::handle_remove_pointer);
}

std::size_t LocationNode::lookups_served() const {
  util::LockGuard lock(mutex_);
  return lookups_served_;
}

std::size_t LocationNode::records_stored() const {
  util::LockGuard lock(mutex_);
  return is_site_ ? addresses_.size() : pointers_.size();
}

Result<std::vector<net::Endpoint>> LocationNode::resolve_down(net::ServerContext& ctx,
                                                              const Bytes& oid) {
  std::vector<std::string> targets;
  {
    util::LockGuard lock(mutex_);
    auto it = pointers_.find(oid);
    if (it != pointers_.end()) {
      targets.assign(it->second.begin(), it->second.end());
    }
  }
  std::vector<net::Endpoint> all;
  for (const auto& child_name : targets) {
    auto cit = children_.find(child_name);
    if (cit == children_.end()) continue;  // stale pointer to removed child
    util::Writer q;
    q.bytes(oid);
    rpc::RpcClient client(ctx.transport(), cit->second);
    auto raw = client.call(rpc::kLocationService, kLookup, q.buffer());
    if (!raw.is_ok()) continue;  // child down: best effort
    auto reply = LookupReply::parse(*raw);
    if (reply.is_ok() && reply->found) {
      all.insert(all.end(), reply->addresses.begin(), reply->addresses.end());
    }
  }
  return all;
}

Result<Bytes> LocationNode::handle_lookup(net::ServerContext& ctx, BytesView payload) {
  Bytes oid;
  try {
    util::Reader r(payload);
    oid = r.bytes();
    r.expect_end();
  } catch (const util::SerialError& e) {
    return Result<Bytes>(ErrorCode::kProtocol, e.what());
  }

  LookupReply reply;
  bool need_down = false;
  {
    util::LockGuard lock(mutex_);
    ++lookups_served_;
    if (is_site_) {
      auto it = addresses_.find(oid);
      if (it != addresses_.end() && !it->second.empty()) {
        reply.found = true;
        reply.addresses.assign(it->second.begin(), it->second.end());
      }
    } else {
      need_down = pointers_.count(oid) > 0;
    }
    reply.has_parent = has_parent_;
    reply.parent = parent_;
  }
  if (need_down) {
    auto down = resolve_down(ctx, oid);
    if (down.is_ok() && !down->empty()) {
      reply.found = true;
      reply.addresses = std::move(*down);
    }
  }
  lookups_counter_->inc();
  if (reply.found) lookup_hits_->inc();
  return reply.serialize();
}

Result<Bytes> LocationNode::handle_insert(net::ServerContext& ctx, BytesView payload) {
  if (!is_site_) {
    return Result<Bytes>(ErrorCode::kInvalidArgument,
                         "contact addresses are stored at site nodes only");
  }
  auto req = decode_oid_endpoint(payload);
  if (!req.is_ok()) return req.status();

  bool first_for_oid;
  {
    util::LockGuard lock(mutex_);
    auto& set = addresses_[req->oid];
    // Without this cap a node could accumulate more addresses than
    // LookupReply::parse accepts and every compliant client would start
    // rejecting its replies.
    if (set.size() >= kMaxLookupAddresses && set.count(req->address) == 0) {
      return Result<Bytes>(ErrorCode::kInvalidArgument,
                           "object already has " +
                               std::to_string(kMaxLookupAddresses) +
                               " registered addresses");
    }
    first_for_oid = set.empty();
    set.insert(req->address);
  }
  inserts_counter_->inc();
  if (first_for_oid && has_parent_) {
    rpc::RpcClient parent(ctx.transport(), parent_);
    auto r = parent.call(rpc::kLocationService, kInsertPointer,
                         encode_oid_child(req->oid, domain_));
    if (!r.is_ok()) return r.status();
  }
  return Bytes{};
}

Result<Bytes> LocationNode::handle_remove(net::ServerContext& ctx, BytesView payload) {
  if (!is_site_) {
    return Result<Bytes>(ErrorCode::kInvalidArgument,
                         "contact addresses are stored at site nodes only");
  }
  auto req = decode_oid_endpoint(payload);
  if (!req.is_ok()) return req.status();

  bool oid_gone = false;
  {
    util::LockGuard lock(mutex_);
    auto it = addresses_.find(req->oid);
    if (it == addresses_.end() || it->second.erase(req->address) == 0) {
      return Result<Bytes>(ErrorCode::kNotFound, "address not registered");
    }
    if (it->second.empty()) {
      addresses_.erase(it);
      oid_gone = true;
    }
  }
  removes_counter_->inc();
  if (oid_gone && has_parent_) {
    rpc::RpcClient parent(ctx.transport(), parent_);
    (void)parent.call(rpc::kLocationService, kRemovePointer,
                      encode_oid_child(req->oid, domain_));
  }
  return Bytes{};
}

Result<Bytes> LocationNode::handle_insert_pointer(net::ServerContext& ctx,
                                                  BytesView payload) {
  auto req = decode_oid_child(payload);
  if (!req.is_ok()) return req.status();
  if (children_.count(req->child) == 0) {
    return Result<Bytes>(ErrorCode::kInvalidArgument,
                         "'" + req->child + "' is not a child of '" + domain_ + "'");
  }
  bool first_for_oid;
  {
    util::LockGuard lock(mutex_);
    auto& set = pointers_[req->oid];
    first_for_oid = set.empty();
    set.insert(req->child);
  }
  if (first_for_oid && has_parent_) {
    rpc::RpcClient parent(ctx.transport(), parent_);
    auto r = parent.call(rpc::kLocationService, kInsertPointer,
                         encode_oid_child(req->oid, domain_));
    if (!r.is_ok()) return r.status();
  }
  return Bytes{};
}

Result<Bytes> LocationNode::handle_remove_pointer(net::ServerContext& ctx,
                                                  BytesView payload) {
  auto req = decode_oid_child(payload);
  if (!req.is_ok()) return req.status();
  bool oid_gone = false;
  {
    util::LockGuard lock(mutex_);
    auto it = pointers_.find(req->oid);
    if (it != pointers_.end()) {
      it->second.erase(req->child);
      if (it->second.empty()) {
        pointers_.erase(it);
        oid_gone = true;
      }
    }
  }
  if (oid_gone && has_parent_) {
    rpc::RpcClient parent(ctx.transport(), parent_);
    (void)parent.call(rpc::kLocationService, kRemovePointer,
                      encode_oid_child(req->oid, domain_));
  }
  return Bytes{};
}

LocationClient::LocationClient(net::Transport& transport, net::Endpoint local_site,
                               obs::MetricsRegistry* registry)
    : transport_(&transport), local_site_(local_site) {
  if (registry == nullptr) registry = &obs::global_registry();
  lookups_counter_ = &registry->counter("location.client.lookups");
  rings_histogram_ = &registry->histogram("location.client.rings",
                                          {1, 2, 3, 4, 5, 6, 8, 12, 16});
}

Result<std::vector<net::Endpoint>> LocationClient::lookup(BytesView oid) {
  GLOBE_PROFILE_SCOPE("locate");
  lookups_counter_->inc();
  net::Endpoint node = local_site_;
  last_rings_ = 0;
  constexpr std::size_t kMaxRings = 16;
  while (last_rings_ < kMaxRings) {
    ++last_rings_;
    util::Writer q;
    q.bytes(oid);
    rpc::RpcClient client(*transport_, node);
    auto raw = client.call(rpc::kLocationService, kLookup, q.buffer());
    if (!raw.is_ok()) return raw.status();
    auto reply = LookupReply::parse(*raw);
    if (!reply.is_ok()) return reply.status();
    if (reply->found) {
      rings_histogram_->observe(static_cast<double>(last_rings_));
      return reply->addresses;
    }
    if (!reply->has_parent) {
      return Result<std::vector<net::Endpoint>>(ErrorCode::kNotFound,
                                                "OID unknown up to the root");
    }
    node = reply->parent;
  }
  return Result<std::vector<net::Endpoint>>(ErrorCode::kProtocol,
                                            "location tree too deep");
}

Status LocationClient::insert(const net::Endpoint& site, BytesView oid,
                              const net::Endpoint& address) {
  rpc::RpcClient client(*transport_, site);
  return client.call(rpc::kLocationService, kInsert, encode_oid_endpoint(oid, address))
      .status();
}

Status LocationClient::remove(const net::Endpoint& site, BytesView oid,
                              const net::Endpoint& address) {
  rpc::RpcClient client(*transport_, site);
  return client.call(rpc::kLocationService, kRemove, encode_oid_endpoint(oid, address))
      .status();
}

}  // namespace globe::location
