#include "location/builder.hpp"

#include <stdexcept>

namespace globe::location {

LocationTree::LocationTree(net::SimNet& net, const std::vector<DomainSpec>& specs,
                           obs::MetricsRegistry* registry) {
  for (const auto& spec : specs) {
    if (entries_.count(spec.name) > 0) {
      throw std::invalid_argument("duplicate domain: " + spec.name);
    }
    Entry entry;
    entry.node = std::make_unique<LocationNode>(spec.name, spec.is_site, registry);
    entry.dispatcher = std::make_unique<rpc::ServiceDispatcher>();
    entry.endpoint = net::Endpoint{spec.host, spec.port};

    if (!spec.parent.empty()) {
      auto pit = entries_.find(spec.parent);
      if (pit == entries_.end()) {
        throw std::invalid_argument("parent '" + spec.parent +
                                    "' must be declared before '" + spec.name + "'");
      }
      entry.node->set_parent(pit->second.endpoint);
      pit->second.node->add_child(spec.name, entry.endpoint);
    }

    entry.node->register_with(*entry.dispatcher);
    net.bind(entry.endpoint, entry.dispatcher->handler());
    entries_.emplace(spec.name, std::move(entry));
  }
}

net::Endpoint LocationTree::endpoint(const std::string& domain) const {
  auto it = entries_.find(domain);
  if (it == entries_.end()) throw std::out_of_range("no domain " + domain);
  return it->second.endpoint;
}

LocationNode& LocationTree::node(const std::string& domain) {
  auto it = entries_.find(domain);
  if (it == entries_.end()) throw std::out_of_range("no domain " + domain);
  return *it->second.node;
}

const LocationNode& LocationTree::node(const std::string& domain) const {
  auto it = entries_.find(domain);
  if (it == entries_.end()) throw std::out_of_range("no domain " + domain);
  return *it->second.node;
}

}  // namespace globe::location
