#!/usr/bin/env python3
"""GlobeDoc project lint: security-discipline invariants the compiler can't see.

Checks (each maps to a guarantee of the paper, "Securely Replicated Web
Documents"):

  nodiscard      Every verification entry point (verify_* / check_* functions
                 and the self-certifying matches_key) must be declared
                 [[nodiscard]] (or return a [[nodiscard]]-class type such as
                 util::Status / util::Result), so a dropped verification
                 result is a compiler warning, not a silent security hole.

  unchecked      No statement may discard the result of a verification call
                 outright: a line consisting of `foo.verify_signature(...);`
                 with no assignment / condition / return / (void) cast is an
                 unchecked verification — the §3 attacks (tampering, replay,
                 stale content) walk straight through such a call site.

  raw-crypto     Raw primitive calls (crypto::sha1/sha256 digests, rsa_sign_*/
                 rsa_verify_*/rsa_encrypt/rsa_decrypt) are allowed only inside
                 src/crypto/ and the designated signing/verification sites.
                 Everything else must go through those sites so there is one
                 auditable place per protocol check.

  no-rand        rand()/std::rand/srand/random() are banned everywhere: all
                 randomness flows through the DRBG (crypto::HmacDrbg) or the
                 seeded simulation RNG (util::SplitMix64), keeping runs
                 deterministic and nonces unpredictable.

  metric-catalog Every metric name registered with obs::MetricsRegistry
                 (`.counter("...")` / `.gauge("...")` / `.histogram("...")`)
                 in src/ or bench/ must be documented in docs/metrics.md
                 (listed in backticks).  /metrics is part of the operational
                 surface; an undocumented series is an unreviewable one.

  probe-catalog  Every cost-probe label declared at a GLOBE_PROFILE_SCOPE
                 site in src/ must be documented in docs/metrics.md (listed
                 in backticks).  Probe labels become the `probe=` label of
                 the profile.* series and the frames of /profilez stacks —
                 an undocumented label is an unreviewable flamegraph frame.

  slo-catalog    Every SLO spec (`obs::SloSpec`) must watch a cataloged
                 metric: a `.metric = "..."` literal in src/, bench/ or
                 examples/ whose name is missing from docs/metrics.md is a
                 spec that can never observe data — a typo there silently
                 disables the alert it defines.

  lock-rank      Every util::Mutex / util::RecursiveMutex class member in
                 src/ must hold a rank in tools/lock_hierarchy.txt, so a new
                 mutex cannot join the lock-acquisition graph unranked and
                 invisible to tools/conc_check.py's order checking (DESIGN.md
                 §13).  Scanning is shared with conc_check so the two tools
                 can never disagree about what counts as a mutex member.

  capacity-rank  Every GLOBE_BOUNDED container member in src/ must be
  capacity-stale ranked in tools/capacity_bounds.txt, and every registry
                 entry must still name a GLOBE_BOUNDED member — the registry
                 is what tools/bounds_check.py enforces, so a missing line
                 hides a member from the unbounded-growth check and a stale
                 line suggests enforcement that no longer exists (DESIGN.md
                 §14).  Scanning is shared with bounds_check so the two
                 tools can never disagree about what counts as a bounded
                 member.

Exit status: 0 when clean, 1 when any violation is found, 2 on usage errors.
Run `tools/lint.py --self-test` to verify every check still fires on seeded
violations.
"""

from __future__ import annotations

import argparse
import pathlib
import re
import sys

REPO = pathlib.Path(__file__).resolve().parent.parent

# Directories scanned for C++ sources.
SCAN_DIRS = ["src", "tests", "bench", "examples"]
CPP_SUFFIXES = {".cpp", ".hpp", ".cc", ".h"}

# ---------------------------------------------------------------------------
# nodiscard: verification entry points that must carry [[nodiscard]] or
# return a nodiscard-class type.
# ---------------------------------------------------------------------------

# Function-name patterns that constitute a verification entry point when they
# *declare* a function in a header under src/.
VERIFY_NAME_RE = re.compile(r"\b(verify(?:_\w+)?|check_element|matches_key|trusts)\s*\(")

# Return types that are [[nodiscard]] at class level, so the declaration is
# protected even without a function-level attribute.
NODISCARD_CLASS_TYPES = re.compile(r"\butil::(Status|Result)\b|\bStatus\b|\bResult\s*<")

# Declaration sites exempt from the nodiscard rule: definitions of the
# checker machinery itself and test helpers.
NODISCARD_EXEMPT_FILES = {"src/util/status.hpp"}

# ---------------------------------------------------------------------------
# unchecked: discarded verification results.
# ---------------------------------------------------------------------------

# A statement line that *begins* with (an object expression and) a
# verification call and ends in `;` discards the result.
UNCHECKED_RE = re.compile(
    r"^\s*(?:[A-Za-z_][\w]*(?:\.|->|::))*"
    r"(?:verify(?:_\w+)?|check_element|matches_key|first_trusted_subject)"
    r"\s*\(.*\)\s*;\s*(?://.*)?$"
)

# ---------------------------------------------------------------------------
# raw-crypto: primitive calls allowed only in designated files.
# ---------------------------------------------------------------------------

RAW_CRYPTO_RE = re.compile(
    r"\bcrypto::(Sha1|Sha256)::digest\w*\s*\(|"
    r"\bcrypto::(sha1|sha256|hkdf_expand_sha256)\s*\(|"
    r"\bcrypto::rsa_(sign|verify|encrypt|decrypt|generate)\w*\s*\("
)

# The designated signing/verification sites: one auditable place per
# protocol-level check (paper §3).  Everything else calls *these*.
RAW_CRYPTO_ALLOWED = {
    "src/globedoc/oid.cpp",            # OID = SHA-1(public key)
    "src/globedoc/element.cpp",        # element digests for cert entries
    "src/globedoc/integrity.cpp",      # integrity-certificate sign/verify
    "src/globedoc/identity.cpp",       # CA identity-certificate sign/verify
    "src/globedoc/dynamic.cpp",        # dynamic receipts sign/verify
    "src/globedoc/object.cpp",         # object key generation
    "src/globedoc/server.cpp",         # admin challenge/response signatures
    "src/globedoc/owner.cpp",          # owner-side signing helpers
    "src/globedoc/importer.cpp",       # import-manifest digest gate (§9)
    "src/naming/service.cpp",          # zone record signing
    "src/naming/resolver.cpp",         # zone record validation
    "src/http/secure_channel.cpp",     # TLS-like handshake + record crypto
    "src/http/static_server.cpp",      # ETag generation (non-security digest)
    "src/replication/refresher.cpp",   # replica re-verification on pull
}
# Tests, benches and examples may exercise primitives directly.
RAW_CRYPTO_ALLOWED_DIRS = ("src/crypto/", "tests/", "bench/", "examples/")

# ---------------------------------------------------------------------------
# no-rand: libc randomness is banned everywhere.
# ---------------------------------------------------------------------------

RAND_RE = re.compile(r"(?<![\w:.])(?:std::)?(?:rand|srand|random|drand48)\s*\(")

# ---------------------------------------------------------------------------
# metric-catalog: registered metric names must appear in docs/metrics.md.
# ---------------------------------------------------------------------------

# A registry registration with a literal series name.  The registry API takes
# the name as the first argument, always a string literal in this tree.
METRIC_REG_RE = re.compile(r'\.\s*(counter|gauge|histogram)\s*\(\s*"([^"]+)"')
METRIC_CATALOG = "docs/metrics.md"
METRIC_SCAN_DIRS = ("src", "bench")

# ---------------------------------------------------------------------------
# probe-catalog: cost-probe labels must appear in docs/metrics.md.
# ---------------------------------------------------------------------------

# A scoped cost probe with a literal label (obs/profile.hpp).  The macro is
# the only sanctioned spelling in src/; labels are always string literals.
PROBE_RE = re.compile(r'GLOBE_PROFILE_SCOPE\s*\(\s*"([^"]+)"\s*\)')
PROBE_SCAN_DIRS = ("src",)

# ---------------------------------------------------------------------------
# slo-catalog: SLO specs may only reference cataloged metric names.
# ---------------------------------------------------------------------------

# A literal metric assignment on an SloSpec (`spec.metric = "proxy.fetches"`).
# The field name is unique to SloSpec in this tree.
SLO_METRIC_RE = re.compile(r'\.\s*metric\s*=\s*"([^"]+)"')
SLO_SCAN_DIRS = ("src", "bench", "examples")

COMMENT_RE = re.compile(r"^\s*(//|\*|/\*)")


def iter_sources():
    for d in SCAN_DIRS:
        root = REPO / d
        if not root.is_dir():
            continue
        for path in sorted(root.rglob("*")):
            if path.suffix in CPP_SUFFIXES and path.is_file():
                yield path


def relpath(path: pathlib.Path) -> str:
    return path.relative_to(REPO).as_posix()


def strip_strings(line: str) -> str:
    """Blanks out string/char literals so regexes don't match inside them."""
    return re.sub(r'"(?:[^"\\]|\\.)*"|\'(?:[^\'\\]|\\.)*\'', '""', line)


def check_file(path: pathlib.Path, violations: list[str]) -> None:
    rel = relpath(path)
    text = path.read_text(encoding="utf-8", errors="replace")
    lines = text.splitlines()
    in_block_comment = False
    # True when the previous code line leaves an expression open (assignment,
    # call argument list, boolean operator, return ...): the current line is a
    # continuation, so a leading verification call is NOT a discarded result.
    prev_continues = False

    for lineno, raw_line in enumerate(lines, start=1):
        line = strip_strings(raw_line)

        # Rudimentary block-comment tracking (good enough for this tree's
        # comment style: no code after */ on the same line).
        if in_block_comment:
            if "*/" in line:
                in_block_comment = False
            continue
        if line.lstrip().startswith("/*") and "*/" not in line:
            in_block_comment = True
            continue
        if COMMENT_RE.match(line):
            continue
        code = line.split("//", 1)[0]

        # --- no-rand: everywhere ---
        if RAND_RE.search(code):
            violations.append(
                f"{rel}:{lineno}: [no-rand] libc randomness is banned; use "
                f"crypto::HmacDrbg (nonces/keys) or util::SplitMix64 (simulation)"
            )

        # --- raw-crypto: outside crypto/ and designated sites ---
        if (
            not rel.startswith(RAW_CRYPTO_ALLOWED_DIRS)
            and rel not in RAW_CRYPTO_ALLOWED
            and RAW_CRYPTO_RE.search(code)
        ):
            violations.append(
                f"{rel}:{lineno}: [raw-crypto] raw primitive call outside "
                f"src/crypto and the designated verification sites"
            )

        # --- unchecked: discarded verification result ---
        if rel.startswith("src/") and not prev_continues and UNCHECKED_RE.match(code):
            violations.append(
                f"{rel}:{lineno}: [unchecked] verification result discarded; "
                f"branch on it or cast to (void) with a justification"
            )

        # --- nodiscard: declarations in src/ headers ---
        if (
            rel.startswith("src/")
            and path.suffix in {".hpp", ".h"}
            and rel not in NODISCARD_EXEMPT_FILES
        ):
            m = VERIFY_NAME_RE.search(code)
            if m:
                # Only *declarations* (prototype or inline definition start):
                # the name must be preceded by a return type on this line or a
                # continuation, and the statement must not be a call.  A call
                # has something binding the result (handled above) or is
                # inside an expression; declarations in this tree always have
                # the return type on the same line.
                before = code[: m.start()]
                is_decl = bool(
                    re.search(r"(bool|util::Status|util::Result<[^>]*>|"
                              r"std::optional<[^>]*>|Status|Result<[^>]*>)\s*$",
                              before.strip() and before or "")
                )
                if is_decl:
                    window_start = max(0, lineno - 3)
                    window = "\n".join(lines[window_start:lineno])
                    if "[[nodiscard]]" not in window:
                        violations.append(
                            f"{rel}:{lineno}: [nodiscard] verification entry "
                            f"point must be declared [[nodiscard]]"
                        )

        stripped = code.rstrip()
        if stripped:
            prev_continues = bool(
                re.search(r"(=|\(|,|\|\||&&|!|\?|:|\breturn|\bco_return)\s*$",
                          stripped)
            )
        # blank lines keep the previous continuation state (wrapped exprs
        # never contain blank lines in this tree, but comments may intervene)


def check_metric_catalog(violations: list[str]) -> None:
    """Every registered metric series name must be listed in the catalog."""
    catalog_path = REPO / METRIC_CATALOG
    cataloged: set[str] = set()
    if catalog_path.is_file():
        cataloged = set(re.findall(r"`([^`\n]+)`",
                                   catalog_path.read_text(encoding="utf-8")))
    for path in iter_sources():
        rel = relpath(path)
        if not rel.startswith(tuple(d + "/" for d in METRIC_SCAN_DIRS)):
            continue
        for lineno, line in enumerate(
                path.read_text(encoding="utf-8", errors="replace").splitlines(),
                start=1):
            if COMMENT_RE.match(line):
                continue
            for kind, name in METRIC_REG_RE.findall(line):
                if name not in cataloged:
                    violations.append(
                        f"{rel}:{lineno}: [metric-catalog] {kind} \"{name}\" "
                        f"is not documented in {METRIC_CATALOG}"
                    )


def check_probe_catalog(violations: list[str]) -> None:
    """Every GLOBE_PROFILE_SCOPE label literal must be in the catalog."""
    catalog_path = REPO / METRIC_CATALOG
    cataloged: set[str] = set()
    if catalog_path.is_file():
        cataloged = set(re.findall(r"`([^`\n]+)`",
                                   catalog_path.read_text(encoding="utf-8")))
    for path in iter_sources():
        rel = relpath(path)
        if not rel.startswith(tuple(d + "/" for d in PROBE_SCAN_DIRS)):
            continue
        for lineno, line in enumerate(
                path.read_text(encoding="utf-8", errors="replace").splitlines(),
                start=1):
            if COMMENT_RE.match(line):
                continue
            for label in PROBE_RE.findall(line):
                if label not in cataloged:
                    violations.append(
                        f"{rel}:{lineno}: [probe-catalog] probe label "
                        f"\"{label}\" is not documented in {METRIC_CATALOG}"
                    )


def check_slo_catalog(violations: list[str]) -> None:
    """Every SLO spec's metric literal must name a cataloged series."""
    catalog_path = REPO / METRIC_CATALOG
    cataloged: set[str] = set()
    if catalog_path.is_file():
        cataloged = set(re.findall(r"`([^`\n]+)`",
                                   catalog_path.read_text(encoding="utf-8")))
    for path in iter_sources():
        rel = relpath(path)
        if not rel.startswith(tuple(d + "/" for d in SLO_SCAN_DIRS)):
            continue
        for lineno, line in enumerate(
                path.read_text(encoding="utf-8", errors="replace").splitlines(),
                start=1):
            if COMMENT_RE.match(line):
                continue
            for name in SLO_METRIC_RE.findall(line):
                if name not in cataloged:
                    violations.append(
                        f"{rel}:{lineno}: [slo-catalog] SLO spec watches "
                        f"\"{name}\", which is not documented in "
                        f"{METRIC_CATALOG} — the alert can never fire"
                    )


LOCK_HIERARCHY = "tools/lock_hierarchy.txt"


def check_lock_hierarchy(violations: list[str]) -> None:
    """Every mutex member in src/ must be ranked in the lock hierarchy."""
    # Reuse conc_check's scanner (same directory) so lint and the analyzer
    # agree, byte for byte, on what a mutex member and its lock id are.
    sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))
    try:
        import conc_check
    finally:
        sys.path.pop(0)
    ranks = conc_check.load_hierarchy(str(REPO / LOCK_HIERARCHY))
    for path in iter_sources():
        rel = relpath(path)
        if not rel.startswith("src/"):
            continue
        prog = conc_check.Program()
        text = conc_check._strip_comments(
            path.read_text(encoding="utf-8", errors="replace"))
        conc_check._harvest_mutexes(text, rel, prog)
        for lock_id, info in sorted(prog.mutexes.items()):
            if lock_id not in ranks:
                violations.append(
                    f"{rel}:{info['line']}: [lock-rank] mutex member "
                    f"\"{lock_id}\" has no rank in {LOCK_HIERARCHY} — run "
                    "`tools/conc_check.py --edges src` to place it, then "
                    f"add a `<rank> {lock_id}` line"
                )


CAPACITY_BOUNDS = "tools/capacity_bounds.txt"


def check_capacity_registry(violations: list[str]) -> None:
    """GLOBE_BOUNDED members and tools/capacity_bounds.txt must match 1:1."""
    # Reuse bounds_check's field harvest (same directory) so lint and the
    # analyzer agree, byte for byte, on what a bounded member and its id are.
    sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))
    try:
        import bounds_check
    finally:
        sys.path.pop(0)
    caps = bounds_check.load_capacity(str(REPO / CAPACITY_BOUNDS))
    bounded: dict[str, tuple[str, int]] = {}
    for path in iter_sources():
        rel = relpath(path)
        if not rel.startswith("src/"):
            continue
        prog = bounds_check.Program()
        text = bounds_check._strip_comments(
            path.read_text(encoding="utf-8", errors="replace"))
        bounds_check._harvest_fields(text, rel, prog)
        for cls, members in prog.field_info.items():
            for member, info in members.items():
                if info["bounded"]:
                    mid = f"{bounds_check.subsys_of(rel)}.{cls}.{member}"
                    bounded[mid] = (rel, info["line"])
    for mid, (rel, line) in sorted(bounded.items()):
        if mid not in caps:
            violations.append(
                f"{rel}:{line}: [capacity-rank] GLOBE_BOUNDED member "
                f"\"{mid}\" has no entry in {CAPACITY_BOUNDS} — add a "
                f"`<capacity> {mid}` line (capacity 0 = grows only during "
                "trusted configuration)"
            )
    for mid in sorted(caps):
        if mid not in bounded:
            violations.append(
                f"{CAPACITY_BOUNDS}: [capacity-stale] entry \"{mid}\" "
                "matches no GLOBE_BOUNDED member in src/ — remove the line "
                "or restore the annotation"
            )


def run_lint() -> int:
    violations: list[str] = []
    for path in iter_sources():
        check_file(path, violations)
    check_metric_catalog(violations)
    check_probe_catalog(violations)
    check_slo_catalog(violations)
    check_lock_hierarchy(violations)
    check_capacity_registry(violations)
    for v in violations:
        print(v)
    if violations:
        print(f"\ntools/lint.py: {len(violations)} violation(s) found.")
        return 1
    print("tools/lint.py: clean.")
    return 0


# ---------------------------------------------------------------------------
# Self-test: every check must fire on a seeded violation and stay quiet on a
# clean equivalent.
# ---------------------------------------------------------------------------

SELF_TEST_CASES = [
    # (name, file-relative-path, snippet, expected-tag or None)
    ("rand fires", "src/util/seeded.cpp", "  int x = rand();\n", "no-rand"),
    ("std::rand fires", "src/util/seeded.cpp", "  int x = std::rand();\n", "no-rand"),
    ("srand fires", "src/util/seeded.cpp", "  srand(42);\n", "no-rand"),
    ("drbg clean", "src/util/seeded.cpp", "  auto x = rng.bytes(16);\n", None),
    ("rand in comment clean", "src/util/seeded.cpp", "  // rand() is banned\n", None),
    ("rand in string clean", "src/util/seeded.cpp", '  log("call rand()");\n', None),
    (
        "raw sha1 outside crypto fires",
        "src/globedoc/proxy.cpp",
        "  auto d = crypto::Sha1::digest_bytes(body);\n",
        "raw-crypto",
    ),
    (
        "raw rsa outside crypto fires",
        "src/location/tree.cpp",
        "  auto sig = crypto::rsa_sign_sha256(key, body);\n",
        "raw-crypto",
    ),
    (
        "raw rsa at designated site clean",
        "src/globedoc/integrity.cpp",
        "  auto sig = crypto::rsa_sign_sha1(key, body);\n",
        None,
    ),
    (
        "raw sha1 in test clean",
        "tests/crypto/sha1_test.cpp",
        "  auto d = crypto::Sha1::digest_bytes(body);\n",
        None,
    ),
    (
        "dropped verify fires",
        "src/globedoc/proxy.cpp",
        "  cert.verify_signature(key);\n",
        "unchecked",
    ),
    (
        "dropped check_element fires",
        "src/replication/refresher.cpp",
        "  certificate->check_element(name, el, now);\n",
        "unchecked",
    ),
    (
        "branched verify clean",
        "src/globedoc/proxy.cpp",
        "  if (!cert.verify_signature(key)) return bad();\n",
        None,
    ),
    (
        "assigned verify clean",
        "src/globedoc/proxy.cpp",
        "  bool ok = cert.verify_signature(key);\n",
        None,
    ),
    (
        "void-cast verify clean",
        "src/globedoc/proxy.cpp",
        "  (void)cert.verify_signature(key);  // fuzz: only parsing matters\n",
        None,
    ),
    (
        "unannotated verify decl fires",
        "src/globedoc/integrity.hpp",
        "  bool verify_signature(const crypto::RsaPublicKey& key) const;\n",
        "nodiscard",
    ),
    (
        "annotated verify decl clean",
        "src/globedoc/integrity.hpp",
        "  [[nodiscard]] bool verify_signature(const crypto::RsaPublicKey& k) const;\n",
        None,
    ),
    (
        "status-returning check decl fires without attribute",
        "src/globedoc/integrity.hpp",
        "  util::Status check_element(const std::string& n) const;\n",
        "nodiscard",
    ),
    # The self-test catalog (see run_self_test) documents exactly one
    # series: `proxy.fetches`.
    (
        "uncataloged metric fires",
        "src/obs/usage.cpp",
        '  registry.counter("proxy.surprise_total").inc();\n',
        "metric-catalog",
    ),
    (
        "uncataloged bench gauge fires",
        "bench/bench_fig9.cpp",
        '  registry.gauge("fig9.mystery_ns", cell).set(1.0);\n',
        "metric-catalog",
    ),
    (
        "cataloged metric clean",
        "src/obs/usage.cpp",
        '  registry.counter("proxy.fetches", {{"outcome", "ok"}}).inc();\n',
        None,
    ),
    (
        "metric in comment clean",
        "src/obs/usage.cpp",
        '  // registry.counter("proxy.surprise_total") would be flagged\n',
        None,
    ),
    # The self-test catalog documents exactly one probe label: `rsa_verify`.
    (
        "uncataloged probe label fires",
        "src/crypto/rsa.cpp",
        '  GLOBE_PROFILE_SCOPE("rsa_surprise");\n',
        "probe-catalog",
    ),
    (
        "cataloged probe label clean",
        "src/crypto/rsa.cpp",
        '  GLOBE_PROFILE_SCOPE("rsa_verify");\n',
        None,
    ),
    (
        "probe in comment clean",
        "src/crypto/rsa.cpp",
        '  // GLOBE_PROFILE_SCOPE("rsa_surprise") would be flagged\n',
        None,
    ),
    (
        "probe outside src clean",
        "bench/bench_fig4_security_overhead.cpp",
        '  GLOBE_PROFILE_SCOPE("bench_only_frame");\n',
        None,
    ),
    (
        "slo spec on uncataloged metric fires",
        "src/obs/slo_setup.cpp",
        '  spec.metric = "proxy.fetchez";\n',
        "slo-catalog",
    ),
    (
        "slo spec in example on uncataloged metric fires",
        "examples/telemetry_demo.cpp",
        '  latency.metric = "proxy.fetch_millis";\n',
        "slo-catalog",
    ),
    (
        "slo spec on cataloged metric clean",
        "src/obs/slo_setup.cpp",
        '  spec.metric = "proxy.fetches";\n',
        None,
    ),
    (
        "slo metric in comment clean",
        "src/obs/slo_setup.cpp",
        '  // spec.metric = "proxy.fetchez" would be flagged\n',
        None,
    ),
    # The self-test hierarchy (see run_self_test) ranks exactly one lock:
    # `util.Ranked.mu_`.
    (
        "unranked mutex member fires",
        "src/util/widget.hpp",
        "class Widget {\n  mutable util::Mutex mu_;\n};\n",
        "lock-rank",
    ),
    (
        "unranked recursive mutex fires",
        "src/cache/widget.hpp",
        "class Widget {\n  util::RecursiveMutex mu_;\n};\n",
        "lock-rank",
    ),
    (
        "ranked mutex member clean",
        "src/util/ranked.hpp",
        "class Ranked {\n  mutable util::Mutex mu_;\n};\n",
        None,
    ),
    (
        "mutex outside src clean",
        "tests/util/widget_test.cpp",
        "class Widget {\n  util::Mutex mu_;\n};\n",
        None,
    ),
    (
        "mutex in comment clean",
        "src/util/widget.hpp",
        "class Widget {\n  // util::Mutex mu_; (gone since PR 3)\n};\n",
        None,
    ),
    (
        "unranked bounded member fires",
        "src/cache/pool.hpp",
        "class Pool {\n  std::vector<int> items_ GLOBE_BOUNDED;\n};\n",
        "capacity-rank",
    ),
    (
        "ranked bounded member clean",
        "src/util/registered.hpp",
        "class Registered {\n  std::deque<int> ring_ GLOBE_BOUNDED;\n};\n",
        None,
    ),
    (
        "stale registry entry fires",
        "tools/capacity_bounds.txt",
        "64 util.Registered.ring_  # self-test seed\n"
        "32 util.Ghost.ring_  # member deleted long ago\n",
        "capacity-stale",
    ),
    (
        "unannotated container member clean",
        "src/cache/plain.hpp",
        "class Plain {\n  std::vector<int> items_;\n};\n",
        None,
    ),
    (
        "bounded member outside src clean",
        "tests/cache/pool_test.cpp",
        "class Pool {\n  std::vector<int> items_ GLOBE_BOUNDED;\n};\n",
        None,
    ),
]


def run_self_test() -> int:
    import tempfile

    failures = 0
    for name, rel, snippet, expected in SELF_TEST_CASES:
        with tempfile.TemporaryDirectory() as tmp:
            root = pathlib.Path(tmp)
            target = root / rel
            target.parent.mkdir(parents=True, exist_ok=True)
            target.write_text(snippet)
            # Minimal catalog so metric-catalog cases can distinguish a
            # documented series from an undocumented one.
            catalog = root / METRIC_CATALOG
            catalog.parent.mkdir(parents=True, exist_ok=True)
            catalog.write_text(
                "# Metric catalog\n\n`proxy.fetches`\n`rsa_verify`\n")
            # Minimal lock hierarchy so lock-rank cases can distinguish a
            # ranked mutex from an unranked one.
            hierarchy = root / LOCK_HIERARCHY
            hierarchy.parent.mkdir(parents=True, exist_ok=True)
            hierarchy.write_text("10 util.Ranked.mu_  # self-test seed\n")
            # Minimal capacity registry + a matching GLOBE_BOUNDED member so
            # capacity cases can distinguish ranked from unranked and live
            # from stale (skipped when the case under test owns these paths).
            capfile = root / CAPACITY_BOUNDS
            if not capfile.exists():
                capfile.write_text("64 util.Registered.ring_  # self-test seed\n")
            seedmember = root / "src/util/registered.hpp"
            if not seedmember.exists():
                seedmember.parent.mkdir(parents=True, exist_ok=True)
                seedmember.write_text(
                    "class Registered {\n"
                    "  std::deque<int> ring_ GLOBE_BOUNDED;\n"
                    "};\n")
            violations: list[str] = []
            global REPO
            saved_repo = REPO
            try:
                REPO = root
                check_file(target, violations)
                check_metric_catalog(violations)
                check_probe_catalog(violations)
                check_slo_catalog(violations)
                check_lock_hierarchy(violations)
                check_capacity_registry(violations)
            finally:
                REPO = saved_repo
            tags = {re.search(r"\[([\w-]+)\]", v).group(1) for v in violations}
            if expected is None:
                ok = not violations
                detail = f"unexpected: {violations}" if not ok else ""
            else:
                ok = expected in tags
                detail = f"expected [{expected}], got {sorted(tags) or 'nothing'}"
            print(f"  {'PASS' if ok else 'FAIL'}: {name}" + (f" ({detail})" if not ok else ""))
            failures += 0 if ok else 1
    if failures:
        print(f"tools/lint.py --self-test: {failures} case(s) FAILED.")
        return 1
    print(f"tools/lint.py --self-test: all {len(SELF_TEST_CASES)} cases passed.")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--self-test", action="store_true",
                        help="verify each check fires on seeded violations")
    args = parser.parse_args()
    if args.self_test:
        return run_self_test()
    return run_lint()


if __name__ == "__main__":
    sys.exit(main())
