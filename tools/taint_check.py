#!/usr/bin/env python3
"""Trust-boundary taint analysis for the GlobeDoc tree (DESIGN.md §9).

Proves the paper's §3 dataflow invariant over the whole call graph: bytes
obtained from an untrusted source (RPC replies, location records, naming
records, plain-HTTP bodies, wire payloads) must pass a verification entry
point (a GLOBE_SANITIZER) before they reach a trusted sink (element-cache
insert, client response, replica-state install, importer store, contact
dial).  Sources, sanitizers and sinks are declared in the source itself via
the macros in src/util/taint_annotations.hpp.

Two interchangeable frontends produce the same per-function IR:

  * ``clang`` — parses each TU with libclang using compile_commands.json and
    reads the ``[[clang::annotate("globe::...")]]`` attributes the macros
    expand to.  Preferred in CI, where python libclang is installed.
  * ``lite``  — a self-contained tokenizer that recognizes the GLOBE_* macro
    tokens directly in the text.  No dependencies beyond the stdlib, so the
    invariant is also enforced by plain ``ctest`` on toolchains without
    clang.  ``--frontend auto`` (the default) tries clang, then falls back.

The shared core then runs a flow-sensitive intraprocedural walk (statements
in textual order, so sanitize-then-retaint is caught) plus an
interprocedural fixpoint over function summaries:

  * ``returns taint``      — which parameters (or internal sources) flow to
                             the return value;
  * ``sanitizes param i``  — annotated sanitizers, plus functions that pass
                             a parameter straight into one;
  * ``sink paths``         — which parameters reach a sink inside the
                             function or transitively through its callees
                             (this is what yields multi-hop call chains).

A finding is a concrete source reaching a sink with no sanitizer in
between; each is reported with the full call chain.  Intentional flows
(e.g. the paper's §3.1.2 speculative dial of unverified contact addresses)
are suppressed through tools/taint_baseline.txt, which requires a written
justification per entry.

Exit status: 0 = clean (modulo baseline), 1 = findings or stale baseline,
2 = usage/environment error.

Usage:
  tools/taint_check.py [--frontend auto|clang|lite] [paths...]
  tools/taint_check.py --self-test          # fixture corpus in tests/taint/
  tools/taint_check.py --list               # dump annotated functions
"""

from __future__ import annotations

import argparse
import os
import re
import sys
from dataclasses import dataclass, field

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

ANNOT_UNTRUSTED = "untrusted"
ANNOT_SANITIZER = "sanitizer"
ANNOT_SINK = "trusted_sink"

MACRO_OF = {
    "GLOBE_UNTRUSTED": ANNOT_UNTRUSTED,
    "GLOBE_SANITIZER": ANNOT_SANITIZER,
    "GLOBE_TRUSTED_SINK": ANNOT_SINK,
}
CLANG_ANNOTATION_OF = {
    "globe::untrusted": ANNOT_UNTRUSTED,
    "globe::sanitizer": ANNOT_SANITIZER,
    "globe::trusted_sink": ANNOT_SINK,
}

# Accessor methods whose results are treated as metadata, not content:
# calling .status() on a tainted Result yields an error description, not the
# untrusted payload.  Kept deliberately short — anything not listed
# propagates taint.
TAINT_FILTER_METHODS = {"is_ok", "status", "code", "size", "empty", "length"}

# Method names of std:: containers/strings.  A receiver call with one of
# these names and an UNKNOWN receiver type (`em.insert(...)` on a local the
# frontend couldn't type) must never fall back to name-only resolution —
# that is how `bytes.insert(...)` would alias onto some project class's
# `insert` and import its sink paths.  Receiver calls whose type IS known
# still resolve normally (so `locator_.insert(...)` finds
# LocationClient::insert through the field-type step).
STD_CONTAINER_METHODS = {
    "insert", "erase", "assign", "append", "push_back", "pop_back",
    "emplace", "emplace_back", "find", "count", "at", "substr", "clear",
    "resize", "reserve", "begin", "end", "front", "back", "data", "c_str",
    "str",
}

MAX_CHAIN = 12  # call-chain depth cap when materializing findings


# --------------------------------------------------------------------------
# Shared IR
# --------------------------------------------------------------------------

@dataclass
class Arg:
    """One argument expression: identifier references + nested calls."""
    refs: list = field(default_factory=list)
    calls: list = field(default_factory=list)


@dataclass
class CallSite:
    line: int = 0
    chain: list = field(default_factory=list)   # e.g. ["Oid", "matches_key"]
    explicit: bool = False                       # qualified with :: (no receiver)
    recv: str | None = None                      # receiver variable, if any
    recv_path: list = field(default_factory=list)  # receiver chain idents
    args: list = field(default_factory=list)     # list[Arg]

    @property
    def name(self):
        return self.chain[-1] if self.chain else ""


@dataclass
class Stmt:
    line: int = 0
    is_return: bool = False
    lhs: str | None = None
    lhs_is_member = False                        # write through x.f / x->f / x[i]
    compound: bool = False                       # += style: taint accumulates
    decl_type: str | None = None                 # declared type of lhs, if a decl
    refs: list = field(default_factory=list)     # rhs identifier references
    calls: list = field(default_factory=list)    # rhs calls (top level)


@dataclass
class Param:
    name: str | None = None
    type: str | None = None
    annots: set = field(default_factory=set)


@dataclass
class Func:
    qname: str = ""
    file: str = ""
    line: int = 0
    cls: str | None = None
    annots: set = field(default_factory=set)
    params: list = field(default_factory=list)   # list[Param]
    stmts: list = field(default_factory=list)    # list[Stmt] (empty: decl only)
    has_body: bool = False
    local_types: dict = field(default_factory=dict)  # var -> type name


@dataclass
class Program:
    funcs: dict = field(default_factory=dict)    # qname -> Func
    by_name: dict = field(default_factory=dict)  # unqualified -> [qname]
    fields: dict = field(default_factory=dict)   # class -> {field -> type}

    def add(self, f: Func):
        prev = self.funcs.get(f.qname)
        if prev is None:
            self.funcs[f.qname] = f
            self.by_name.setdefault(f.qname.split("::")[-1], []).append(f.qname)
            return
        # Merge declaration + definition: annotations union (positionally for
        # params), body/param-names from whichever has them.
        prev.annots |= f.annots
        for i, p in enumerate(f.params):
            if i < len(prev.params):
                prev.params[i].annots |= p.annots
                if prev.params[i].name is None:
                    prev.params[i].name = p.name
                if prev.params[i].type is None:
                    prev.params[i].type = p.type
            else:
                prev.params.append(p)
        if f.has_body and not prev.has_body:
            prev.stmts, prev.has_body = f.stmts, True
            prev.file, prev.line = f.file, f.line
            prev.local_types.update(f.local_types)


# --------------------------------------------------------------------------
# Lite frontend: tokenizer + scope-tracking parser
# --------------------------------------------------------------------------

_TOKEN_RE = re.compile(
    r"""[A-Za-z_]\w*          # identifier
      | 0[xX][0-9a-fA-F']+ | \d[\d.'eEfuUlL]*   # numbers
      | ::|->\*?|\.\*|<<=|>>=|<=>|==|!=|<=|>=|&&|\|\||\+=|-=|\*=|/=|%=|\|=|&=|\^=|<<|>>|\+\+|--
      | [{}()\[\];,<>=!&|*+\-/%?:~^.\#@]
    """,
    re.VERBOSE,
)

_KEYWORDS = {
    "if", "else", "for", "while", "do", "switch", "case", "default", "break",
    "continue", "return", "goto", "try", "catch", "throw", "new", "delete",
    "sizeof", "alignof", "static_cast", "dynamic_cast", "const_cast",
    "reinterpret_cast", "true", "false", "nullptr", "this", "const",
    "constexpr", "static", "inline", "virtual", "override", "final",
    "noexcept", "mutable", "explicit", "auto", "void", "bool", "char", "int",
    "unsigned", "signed", "long", "short", "float", "double", "class",
    "struct", "enum", "union", "namespace", "using", "typedef", "template",
    "typename", "public", "private", "protected", "friend", "operator",
    "co_await", "co_return", "co_yield", "std",
}

_QUAL_MACROS = {"GLOBE_EXCLUDES", "GLOBE_REQUIRES", "GLOBE_GUARDED_BY",
                "GLOBE_PT_GUARDED_BY", "GLOBE_ACQUIRE", "GLOBE_RELEASE",
                "GLOBE_NO_THREAD_SAFETY_ANALYSIS", "GLOBE_SCOPED_CAPABILITY",
                "GLOBE_BLOCKING"}  # conc_check's marker: noise to taint

_CONTROL = {"if", "for", "while", "switch", "catch", "else", "do", "try"}


def _strip_comments(text: str) -> str:
    """Removes comments, string/char literals and preprocessor directives,
    preserving newlines so token line numbers stay correct."""
    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        if c == "/" and i + 1 < n and text[i + 1] == "/":
            j = text.find("\n", i)
            i = n if j < 0 else j
        elif c == "/" and i + 1 < n and text[i + 1] == "*":
            j = text.find("*/", i + 2)
            seg = text[i:(n if j < 0 else j + 2)]
            out.append("\n" * seg.count("\n"))
            i = n if j < 0 else j + 2
        elif c == "'" and i > 0 and text[i - 1] in "0123456789abcdefABCDEF" \
                and i + 1 < n and text[i + 1].isalnum():
            i += 1  # digit separator (1'000'000), not a char literal
        elif c in "\"'":
            quote, j = c, i + 1
            while j < n and text[j] != quote:
                j += 2 if text[j] == "\\" else 1
            out.append('""' if quote == '"' else "0")
            i = min(j + 1, n)
        elif c == "#" and (i == 0 or text[i - 1] == "\n"):
            j = i
            while j < n:
                k = text.find("\n", j)
                if k < 0:
                    j = n
                    break
                if text[k - 1] == "\\":
                    j = k + 1
                    continue
                j = k
                break
            seg = text[i:j]
            out.append("\n" * seg.count("\n"))
            i = j
        else:
            out.append(c)
            i += 1
    return "".join(out)


def _tokenize(text: str):
    """Returns [(token, line)]."""
    toks = []
    line = 1
    pos = 0
    for m in _TOKEN_RE.finditer(text):
        line += text.count("\n", pos, m.start())
        pos = m.start()
        toks.append((m.group(0), line))
    return toks


def _match_forward(toks, i, open_t, close_t):
    """Index just past the bracket pair opening at toks[i]."""
    depth = 0
    while i < len(toks):
        t = toks[i][0]
        if t == open_t:
            depth += 1
        elif t == close_t:
            depth -= 1
            if depth == 0:
                return i + 1
        i += 1
    return len(toks)


def _split_top(toks, sep=","):
    """Splits a token list at top-level `sep` (paren/brace/angle aware)."""
    parts, cur = [], []
    p = b = a = 0
    for tk in toks:
        t = tk[0]
        if t in "([{":
            p += 1
        elif t in ")]}":
            p -= 1
        elif t == "<":
            a += 1
        elif t == ">" and a > 0:
            a -= 1
        if t == sep and p == 0 and b == 0 and a == 0:
            parts.append(cur)
            cur = []
        else:
            cur.append(tk)
    parts.append(cur)
    return parts


def _parse_param(toks) -> Param:
    p = Param()
    # Truncate default argument.
    for idx, tk in enumerate(toks):
        if tk[0] == "=" and _paren_depth_ok(toks, idx):
            toks = toks[:idx]
            break
    idents = [(i, tk[0]) for i, tk in enumerate(toks)
              if re.match(r"[A-Za-z_]", tk[0])]
    kept = []
    for i, name in idents:
        if name in MACRO_OF:
            p.annots.add(MACRO_OF[name])
        elif name not in ("const", "struct", "typename", "volatile"):
            kept.append((i, name))
    if not kept:
        return p
    li, lname = kept[-1]
    prev = toks[li - 1][0] if li > 0 else None
    if len(kept) >= 2 and prev not in ("::", "<", ","):
        p.name = lname
        p.type = kept[-2][1] if kept[-2][1] != "::" else None
        # walk back over template closers to the principal type ident
        for i, name in reversed(kept[:-1]):
            p.type = name
            break
    else:
        p.type = lname  # unnamed parameter
    return p


def _paren_depth_ok(toks, idx):
    d = a = 0
    for tk in toks[:idx]:
        t = tk[0]
        if t in "([{":
            d += 1
        elif t in ")]}":
            d -= 1
        elif t == "<":
            a += 1
        elif t == ">" and a > 0:
            a -= 1
    return d == 0 and a == 0


def _parse_expr(toks):
    """Recursive descent over an expression token list -> (refs, calls)."""
    refs, calls = [], []
    i = 0
    n = len(toks)
    while i < n:
        t, line = toks[i]
        if re.match(r"[A-Za-z_]", t) and t not in _KEYWORDS \
                and t not in MACRO_OF and t not in _QUAL_MACROS:
            # Parse the whole postfix chain forward: a::b, x.f, p->q ...
            chain, seps = [t], []
            j = i + 1
            while j + 1 < n and toks[j][0] in ("::", ".", "->") \
                    and re.match(r"[A-Za-z_]", toks[j + 1][0]) \
                    and toks[j + 1][0] not in _KEYWORDS:
                seps.append(toks[j][0])
                chain.append(toks[j + 1][0])
                j += 2
            if j < n and toks[j][0] == "(":
                cs = CallSite(line=line, chain=chain)
                if seps and seps[-1] in (".", "->"):
                    cs.recv_path = chain[:-1]
                    cs.recv = cs.recv_path[0]
                else:
                    cs.explicit = bool(seps)
                end = _match_forward(toks, j, "(", ")")
                inner = toks[j + 1:end - 1]
                for part in _split_top(inner):
                    if not part:
                        continue
                    arefs, acalls = _parse_expr(part)
                    cs.args.append(Arg(refs=arefs, calls=acalls))
                calls.append(cs)
                i = end
                continue
            if seps and all(s == "::" for s in seps):
                i = j  # qualified constant (ErrorCode::kNotFound): not a var
                continue
            refs.append(chain[0])  # member-access base variable
            i = j
            continue
        i += 1
    return refs, calls


_SINGLE_TYPES = {"auto", "bool", "int", "unsigned", "long", "short", "float",
                 "double", "char", "size_t", "uint32_t", "uint64_t"}


def _parse_stmt(seg) -> Stmt | None:
    """seg: token list (no trailing ';')."""
    if not seg:
        return None
    st = Stmt(line=seg[0][1])
    # Strip leading control keywords / labels.
    while seg and seg[0][0] in ("else", "do", "try"):
        seg = seg[1:]
    if not seg:
        return None
    head = seg[0][0]
    if head in ("case", "default", "break", "continue", "goto", "using",
                "public", "private", "protected"):
        return None
    cond_refs, cond_calls = [], []
    if head == "return":
        st.is_return = True
        seg = seg[1:]
    elif head in ("if", "while", "switch", "for", "catch"):
        seg = seg[1:]
        if seg and seg[0][0] == "(":
            end = _match_forward(seg, 0, "(", ")")
            inner = seg[1:end - 1]
            rest = seg[end:]  # brace-less body: `if (ok) do_thing(x);`
            if head == "for":
                colon = [i for i, tk in enumerate(inner)
                         if tk[0] == ":" and _paren_depth_ok(inner, i)]
                if colon:  # range-for: `for (decl : expr)` is a declaration
                    lhs = inner[:colon[0]]
                    idents = [tk[0] for tk in lhs if re.match(r"[A-Za-z_]", tk[0])
                              and tk[0] not in _KEYWORDS]
                    st.lhs = idents[-1] if idents else None
                    inner = inner[colon[0] + 1:]
            if rest:
                cond_refs, cond_calls = _parse_expr(inner)
                if rest[0][0] == "return":
                    st.is_return = True
                    rest = rest[1:]
                seg = rest
            else:
                seg = inner
    # Assignment split at top-level '='.
    eq = None
    compound = False
    for idx, tk in enumerate(seg):
        if _paren_depth_ok(seg, idx):
            if tk[0] == "=":
                eq = idx
                break
            if tk[0] in ("+=", "-=", "*=", "/=", "|=", "&=", "^=", "<<=", ">>="):
                eq = idx
                compound = True
                break
    if eq is not None and st.lhs is None:
        lhs_toks = seg[:eq]
        idents = [tk[0] for tk in lhs_toks if re.match(r"[A-Za-z_]", tk[0])
                  and tk[0] not in _KEYWORDS and tk[0] not in MACRO_OF]
        member = any(tk[0] in (".", "->", "[") for tk in lhs_toks)
        if idents:
            if member:
                st.lhs = idents[0]
                st.lhs_is_member = True
                # index expressions are reads
                st.refs.extend(idents[1:])
            else:
                st.lhs = idents[-1]
                if len(idents) >= 2:
                    st.decl_type = idents[-2]
        st.compound = compound
        seg = seg[eq + 1:]
    elif eq is None and st.lhs is None and not st.is_return:
        # Constructor-style declaration: `Type name(args)` / `Type name{args}`
        idents = []
        for idx, tk in enumerate(seg):
            if re.match(r"[A-Za-z_]", tk[0]):
                idents.append((idx, tk[0]))
            elif tk[0] in ("(", "{"):
                break
            elif tk[0] not in ("::", "<", ">", "&", "*", ",", "const"):
                idents = []
                break
        vals = [x for x in idents if x[1] not in _KEYWORDS or x[1] in _SINGLE_TYPES]
        if len(vals) >= 2:
            last_idx, last = vals[-1]
            nxt = seg[last_idx + 1][0] if last_idx + 1 < len(seg) else None
            prev = seg[last_idx - 1][0] if last_idx > 0 else None
            if nxt in ("(", "{") and prev not in ("::", ".", "->"):
                st.lhs = last
                st.decl_type = vals[-2][1]
                # the ctor call: Type(args)
                end = _match_forward(seg, last_idx + 1,
                                     nxt, ")" if nxt == "(" else "}")
                inner = seg[last_idx + 2:end - 1]
                cs = CallSite(line=st.line, chain=[st.decl_type, st.decl_type],
                              explicit=True)
                for part in _split_top(inner):
                    if not part:
                        continue
                    arefs, acalls = _parse_expr(part)
                    cs.args.append(Arg(refs=arefs, calls=acalls))
                st.calls.append(cs)
                return st
    refs, calls = _parse_expr(seg)
    st.refs.extend(refs)
    st.calls.extend(calls)
    # Condition refs/calls of a brace-less control statement ride along so
    # sanitizer calls in the condition (e.g. `if (x.verify()) use(x)`) and
    # their taint still take effect.
    st.refs.extend(cond_refs)
    st.calls.extend(cond_calls)
    if st.lhs is None and st.decl_type is None and not st.is_return \
            and not st.calls and not st.refs:
        return None
    return st


def _parse_body(toks):
    """Linearizes a function body into statements (textual order)."""
    stmts = []
    local_types = {}
    seg = []
    i, n = 0, len(toks)
    pdepth = 0
    while i < n:
        t, line = toks[i]
        if t == "(":
            pdepth += 1
            seg.append(toks[i])
        elif t == ")":
            pdepth -= 1
            seg.append(toks[i])
        elif t == ";" and pdepth == 0:
            st = _parse_stmt(seg)
            if st:
                stmts.append(st)
                if st.decl_type and st.lhs:
                    local_types[st.lhs] = st.decl_type
                elif st.lhs and st.lhs not in local_types \
                        and len(st.calls) == 1 and st.calls[0].explicit \
                        and len(st.calls[0].chain) >= 2 \
                        and st.calls[0].chain[-2][:1].isupper():
                    # Factory idiom: `auto x = Type::parse(...)` — remember
                    # Type so later `x->method()` receiver calls resolve.
                    local_types[st.lhs] = st.calls[0].chain[-2]
            seg = []
        elif t == "{" and pdepth == 0:
            heads = [tk[0] for tk in seg]
            is_control = (not seg) or heads[0] in _CONTROL or heads[-1] == ")" \
                and heads[0] in _CONTROL
            if not seg or heads[0] in _CONTROL:
                st = _parse_stmt(seg)
                if st:
                    stmts.append(st)
                seg = []  # descend into the block
            else:
                # init-list / lambda body: swallow balanced braces into the
                # current statement so its refs stay attached.
                end = _match_forward(toks, i, "{", "}")
                seg.extend(toks[i + 1:end - 1])
                i = end
                continue
        elif t == "}" and pdepth == 0:
            st = _parse_stmt(seg)
            if st:
                stmts.append(st)
            seg = []
        else:
            seg.append(toks[i])
        i += 1
    st = _parse_stmt(seg)
    if st:
        stmts.append(st)
    return stmts, local_types


def parse_file_lite(path: str, prog: Program):
    text = _strip_comments(open(path, encoding="utf-8", errors="replace").read())
    toks = _tokenize(text)
    scopes = []   # (kind, name, brace_marker)
    pending = []  # tokens since the last boundary
    i, n = 0, len(toks)

    def qname(parts):
        names = [s[1] for s in scopes if s[0] in ("ns", "class") and s[1]]
        return "::".join(names + parts)

    def cur_class():
        for s in reversed(scopes):
            if s[0] == "class":
                return s[1]
        return None

    while i < n:
        t, line = toks[i]
        if t == "namespace":
            # C++17 nested namespaces (`namespace a::b {`) open ONE brace.
            j = i + 1
            names = []
            while j < n and toks[j][0] not in ("{", ";", "="):
                if re.match(r"[A-Za-z_]", toks[j][0]):
                    names.append(toks[j][0])
                j += 1
            if j < n and toks[j][0] == "{":
                scopes.append(("ns", "::".join(names)))
                i = j + 1
            else:  # namespace alias / using directive fragment
                i = j + 1
            pending = []
            continue
        if t in ("class", "struct") and not (pending and pending[-1][0] == "enum"):
            j = i + 1
            name = None
            while j < n and toks[j][0] not in ("{", ";"):
                if re.match(r"[A-Za-z_]", toks[j][0]) and name is None:
                    name = toks[j][0]
                if toks[j][0] == "(":  # e.g. `struct X x(...)` — not a defn
                    break
                j += 1
            if j < n and toks[j][0] == "{" and name:
                scopes.append(("class", name, 1))
                i = j + 1
                pending = []
                continue
            pending.append(toks[i])
            i += 1
            continue
        if t == "template":
            if i + 1 < n and toks[i + 1][0] == "<":
                d = 0
                j = i + 1
                while j < n:
                    if toks[j][0] == "<":
                        d += 1
                    elif toks[j][0] == ">":
                        d -= 1
                        if d == 0:
                            break
                    j += 1
                i = j + 1
                continue
        if t == "{":
            i = _match_forward(toks, i, "{", "}")  # stray block (enum, init)
            pending = []
            continue
        if t == "}":
            if scopes:
                scopes.pop()
            if i + 1 < n and toks[i + 1][0] == ";":
                i += 1
            i += 1
            pending = []
            continue
        if t == ";":
            pending = []
            i += 1
            continue
        if t == "(" and pending:
            # candidate function declarator
            name_parts = []
            j = len(pending) - 1
            if re.match(r"[A-Za-z_]", pending[j][0]) \
                    and pending[j][0] not in _KEYWORDS - {"operator"}:
                name_parts.append(pending[j][0])
                j -= 1
                while j >= 1 and pending[j][0] == "::" \
                        and re.match(r"[A-Za-z_]", pending[j - 1][0]):
                    name_parts.append(pending[j - 1][0])
                    j -= 2
            name_parts.reverse()
            is_dtor = j >= 0 and pending[j][0] == "~"
            is_op = "operator" in [p[0] for p in pending[max(0, j - 1):]]
            if not name_parts or is_op:
                i = _match_forward(toks, i, "(", ")")
                continue
            close = _match_forward(toks, i, "(", ")")
            ptoks = toks[i + 1:close - 1]
            # qualifier zone: find ';' (decl) or '{' (def)
            k = close
            kind = None
            while k < n:
                q = toks[k][0]
                if q == ";":
                    kind = "decl"
                    break
                if q == "{":
                    kind = "def"
                    break
                if q == "=":  # = 0; / = default; / = delete;
                    kind = "decl"
                    while k < n and toks[k][0] != ";":
                        k += 1
                    break
                if q == ":":  # ctor init list: skip to body '{'
                    k += 1
                    depth = 0
                    while k < n:
                        qq = toks[k][0]
                        if qq in ("(", "{") and depth == 0 and qq == "{":
                            break
                        if qq in ("(",):
                            k = _match_forward(toks, k, "(", ")")
                            continue
                        if qq == "{":
                            d2 = 0
                            # init-list brace vs body brace: body follows a
                            # closing paren/brace or identifier directly; we
                            # treat a '{' preceded by ')' or '}' as the body.
                            prev = toks[k - 1][0]
                            if prev in (")", "}"):
                                break
                            k = _match_forward(toks, k, "{", "}")
                            continue
                        k += 1
                    kind = "def"
                    break
                if q in _QUAL_MACROS and k + 1 < n and toks[k + 1][0] == "(":
                    k = _match_forward(toks, k + 1, "(", ")")
                    continue
                if q == "(":  # not a declarator after all (an expression)
                    kind = "skip"
                    break
                k += 1
            if kind is None:
                kind = "skip"
            if is_dtor:
                kind_final = "skip"
            else:
                kind_final = kind
            if kind_final == "skip":
                i = close
                continue
            f = Func(file=os.path.relpath(path, REPO), line=line)
            ann_toks = [p[0] for p in pending] + \
                       [toks[m][0] for m in range(close, min(k, n))]
            for tok in ann_toks:
                if tok in MACRO_OF:
                    f.annots.add(MACRO_OF[tok])
            for part in _split_top(ptoks):
                part = [tk for tk in part]
                if not part or (len(part) == 1 and part[0][0] == "void"):
                    continue
                f.params.append(_parse_param(part))
            cls = cur_class()
            parts = name_parts[:]
            f.qname = qname(parts)  # class scope is already on the stack
            f.cls = cls if cls else (parts[-2] if len(parts) >= 2 else None)
            if kind == "def":
                body_start = k  # toks[k] == '{'
                body_end = _match_forward(toks, body_start, "{", "}")
                f.stmts, f.local_types = _parse_body(toks[body_start + 1:body_end - 1])
                f.has_body = True
                # parameters are locals too
                for p in f.params:
                    if p.name and p.type:
                        f.local_types.setdefault(p.name, p.type)
                prog.add(f)
                i = body_end
                pending = []
                continue
            else:
                prog.add(f)
                i = k + 1
                pending = []
                continue
        pending.append(toks[i])
        i += 1

    # Field types: cheap second pass per class body is folded into decl
    # parsing above; for receiver-chain resolution we also harvest
    # `Type name_;`-shaped member declarations.
    _harvest_fields(text, prog)


_FIELD_RE = re.compile(
    r"^\s*(?:mutable\s+)?(?:const\s+)?([A-Za-z_][\w:]*(?:<[^;<>]*>)?)[&*\s]+"
    r"([A-Za-z_]\w*_?)\s*(?:GLOBE_GUARDED_BY\([^)]*\))?\s*(?:=[^;]*)?;",
    re.MULTILINE,
)
_CLASS_RE = re.compile(r"\b(?:class|struct)\s+([A-Za-z_]\w*)[^;{]*\{")


def _harvest_fields(text: str, prog: Program):
    for cm in _CLASS_RE.finditer(text):
        cls = cm.group(1)
        # naive body span: to matching brace
        depth = 0
        j = cm.end() - 1
        start = j
        while j < len(text):
            if text[j] == "{":
                depth += 1
            elif text[j] == "}":
                depth -= 1
                if depth == 0:
                    break
            j += 1
        body = text[start:j]
        table = prog.fields.setdefault(cls, {})
        for fm in _FIELD_RE.finditer(body):
            ftype = fm.group(1).split("<")[0].split("::")[-1]
            if ftype in ("return", "using", "typedef"):
                continue
            table.setdefault(fm.group(2), ftype)


def build_program_lite(paths) -> Program:
    prog = Program()
    for p in paths:
        parse_file_lite(p, prog)
    return prog


# --------------------------------------------------------------------------
# libclang frontend
# --------------------------------------------------------------------------

def build_program_clang(paths, compile_commands_dir) -> Program:
    import clang.cindex as ci  # noqa: imported lazily; CI installs libclang

    prog = Program()
    index = ci.Index.create()
    try:
        cdb = ci.CompilationDatabase.fromDirectory(compile_commands_dir)
    except ci.CompilationDatabaseError:
        raise RuntimeError(
            f"no compile_commands.json under {compile_commands_dir} "
            "(configure with -DCMAKE_EXPORT_COMPILE_COMMANDS=ON)")

    wanted = {os.path.abspath(p) for p in paths}
    wanted_dirs = {p for p in wanted if os.path.isdir(p)}

    def in_scope(fname):
        if not fname:
            return False
        f = os.path.abspath(fname)
        return f in wanted or any(f.startswith(d + os.sep) for d in wanted_dirs)

    def annots_of(cursor):
        out = set()
        for ch in cursor.get_children():
            if ch.kind == ci.CursorKind.ANNOTATE_ATTR:
                a = CLANG_ANNOTATION_OF.get(ch.spelling)
                if a:
                    out.add(a)
        return out

    def qualified(cursor):
        parts = []
        c = cursor
        while c is not None and c.kind != ci.CursorKind.TRANSLATION_UNIT:
            if c.spelling:
                parts.append(c.spelling)
            c = c.semantic_parent
        return "::".join(reversed(parts))

    def expr_to_arg(node) -> Arg:
        arg = Arg()
        collect_expr(node, arg.refs, arg.calls)
        return arg

    def collect_expr(node, refs, calls):
        k = node.kind
        if k == ci.CursorKind.CALL_EXPR:
            cs = CallSite(line=node.location.line)
            ref = node.referenced
            if ref is not None and ref.spelling:
                cs.chain = qualified(ref).split("::")
                cs.explicit = True
            else:
                cs.chain = [node.spelling or "?"]
            children = list(node.get_children())
            args = list(node.get_arguments())
            # receiver: for member calls the first child subtree holds the
            # base expression
            if children and children[0] not in args:
                base_refs, base_calls = [], []
                collect_expr(children[0], base_refs, base_calls)
                if base_refs:
                    cs.recv = base_refs[0]
                    cs.recv_path = base_refs
                    refs.extend(base_refs)
            for a in args:
                cs.args.append(expr_to_arg(a))
            calls.append(cs)
            return
        if k == ci.CursorKind.DECL_REF_EXPR:
            if node.spelling:
                refs.append(node.spelling)
            return
        if k == ci.CursorKind.MEMBER_REF_EXPR:
            base = list(node.get_children())
            if base:
                collect_expr(base[0], refs, calls)
            elif node.spelling:
                refs.append(node.spelling)
            return
        for ch in node.get_children():
            collect_expr(ch, refs, calls)

    STMT_BLOCKS = None

    def linearize(node, stmts, local_types):
        k = node.kind
        if k == ci.CursorKind.COMPOUND_STMT:
            for ch in node.get_children():
                linearize(ch, stmts, local_types)
            return
        if k in (ci.CursorKind.IF_STMT, ci.CursorKind.WHILE_STMT,
                 ci.CursorKind.FOR_STMT, ci.CursorKind.SWITCH_STMT,
                 ci.CursorKind.CXX_TRY_STMT, ci.CursorKind.CXX_CATCH_STMT,
                 ci.CursorKind.DO_STMT, ci.CursorKind.CASE_STMT,
                 ci.CursorKind.DEFAULT_STMT, ci.CursorKind.CXX_FOR_RANGE_STMT):
            for ch in node.get_children():
                if k == ci.CursorKind.CXX_FOR_RANGE_STMT \
                        and ch.kind == ci.CursorKind.VAR_DECL:
                    st = Stmt(line=ch.location.line, lhs=ch.spelling)
                    for sub in ch.get_children():
                        collect_expr(sub, st.refs, st.calls)
                    stmts.append(st)
                    continue
                linearize(ch, stmts, local_types)
            return
        if k == ci.CursorKind.DECL_STMT:
            for ch in node.get_children():
                if ch.kind == ci.CursorKind.VAR_DECL:
                    st = Stmt(line=ch.location.line, lhs=ch.spelling)
                    tname = ch.type.spelling.split("<")[0].split("::")[-1].strip("& *")
                    st.decl_type = tname or None
                    if st.decl_type:
                        local_types[ch.spelling] = st.decl_type
                    for sub in ch.get_children():
                        collect_expr(sub, st.refs, st.calls)
                    stmts.append(st)
            return
        if k == ci.CursorKind.RETURN_STMT:
            st = Stmt(line=node.location.line, is_return=True)
            for ch in node.get_children():
                collect_expr(ch, st.refs, st.calls)
            stmts.append(st)
            return
        if k == ci.CursorKind.BINARY_OPERATOR or \
                k == ci.CursorKind.COMPOUND_ASSIGNMENT_OPERATOR:
            kids = list(node.get_children())
            if len(kids) == 2:
                lrefs, lcalls = [], []
                collect_expr(kids[0], lrefs, lcalls)
                st = Stmt(line=node.location.line)
                if lrefs:
                    st.lhs = lrefs[0]
                    st.lhs_is_member = len(lrefs) > 1
                st.compound = (k == ci.CursorKind.COMPOUND_ASSIGNMENT_OPERATOR)
                collect_expr(kids[1], st.refs, st.calls)
                st.calls.extend(lcalls)
                stmts.append(st)
                return
        # generic statement/expression
        st = Stmt(line=node.location.line)
        collect_expr(node, st.refs, st.calls)
        if st.refs or st.calls:
            stmts.append(st)

    seen_tus = set()
    for cmd in cdb.getAllCompileCommands():
        src = os.path.join(cmd.directory, cmd.filename) \
            if not os.path.isabs(cmd.filename) else cmd.filename
        src = os.path.normpath(src)
        if src in seen_tus:
            continue
        seen_tus.add(src)
        cargs = [a for a in list(cmd.arguments)[1:]
                 if a not in ("-c", "-o", cmd.filename) and not a.endswith(".o")]
        try:
            tu = index.parse(src, args=cargs)
        except ci.TranslationUnitLoadError:
            continue
        for cur in tu.cursor.walk_preorder():
            if cur.kind not in (ci.CursorKind.FUNCTION_DECL,
                                ci.CursorKind.CXX_METHOD,
                                ci.CursorKind.CONSTRUCTOR):
                continue
            if not in_scope(cur.location.file.name if cur.location.file else None):
                continue
            f = Func(qname=qualified(cur),
                     file=os.path.relpath(cur.location.file.name, REPO),
                     line=cur.location.line)
            f.annots = annots_of(cur)
            sp = cur.semantic_parent
            if sp is not None and sp.kind in (ci.CursorKind.CLASS_DECL,
                                              ci.CursorKind.STRUCT_DECL):
                f.cls = sp.spelling
            for pc in cur.get_arguments():
                p = Param(name=pc.spelling or None,
                          type=pc.type.spelling.split("<")[0]
                          .split("::")[-1].strip("& *") or None)
                p.annots = annots_of(pc)
                f.params.append(p)
            body = None
            for ch in cur.get_children():
                if ch.kind == ci.CursorKind.COMPOUND_STMT:
                    body = ch
            if body is not None:
                f.has_body = True
                linearize(body, f.stmts, f.local_types)
                for p in f.params:
                    if p.name and p.type:
                        f.local_types.setdefault(p.name, p.type)
            prog.add(f)
        # fields for receiver-type resolution
        for cur in tu.cursor.walk_preorder():
            if cur.kind == ci.CursorKind.FIELD_DECL and \
                    in_scope(cur.location.file.name if cur.location.file else None):
                cls = cur.semantic_parent.spelling
                t = cur.type.spelling.split("<")[0].split("::")[-1].strip("& *")
                if cls and t:
                    prog.fields.setdefault(cls, {}).setdefault(cur.spelling, t)
    return prog


# --------------------------------------------------------------------------
# Analysis core
# --------------------------------------------------------------------------

class SourceAtom(tuple):
    """(desc, file, line) — a concrete taint origin."""
    __slots__ = ()

    def __new__(cls, desc, file, line):
        return super().__new__(cls, (desc, file, line))


class ParamAtom(tuple):
    """(param_index,) — symbolic taint of the enclosing function's param."""
    __slots__ = ()

    def __new__(cls, i):
        return super().__new__(cls, (i,))


@dataclass
class SinkPath:
    sink: str                       # sink function qname (or f"{q} (return)")
    sink_file: str = ""
    sink_line: int = 0
    chain: tuple = ()               # ((func_qname, file, line), ...)


@dataclass
class Summary:
    returns_param: set = field(default_factory=set)      # param indices
    returns_sources: set = field(default_factory=set)    # SourceAtoms
    sanitizes: set = field(default_factory=set)          # param indices
    sanitizes_all: bool = False
    sink_params: dict = field(default_factory=dict)      # idx -> [SinkPath]
    return_sink: bool = False


@dataclass
class Finding:
    enclosing: str
    file: str
    line: int
    source: SourceAtom
    sink: SinkPath

    def key(self):
        sink_name = self.sink.sink
        return f"{self.enclosing} | {self.source[0]} -> {sink_name}"


class Analyzer:
    def __init__(self, prog: Program, verbose=False):
        self.prog = prog
        self.verbose = verbose
        self.sum: dict[str, Summary] = {}
        self.findings: list[Finding] = []
        for q, f in prog.funcs.items():
            s = Summary()
            if ANNOT_SANITIZER in f.annots:
                s.sanitizes_all = True
            if ANNOT_SINK in f.annots:
                s.return_sink = True
            for i, p in enumerate(f.params):
                if ANNOT_SANITIZER in p.annots:
                    s.sanitizes.add(i)
                if ANNOT_SINK in p.annots:
                    s.sink_params.setdefault(i, []).append(
                        SinkPath(sink=q, sink_file=f.file, sink_line=f.line))
            self.sum[q] = s

    # -- resolution --------------------------------------------------------

    def resolve(self, cs: CallSite, enclosing: Func):
        """CallSite -> Func or None."""
        name = cs.name
        if name in TAINT_FILTER_METHODS:
            return "FILTER"
        cands = self.prog.by_name.get(name, [])
        if cs.explicit and len(cs.chain) >= 2:
            suffix = "::".join(cs.chain)
            matches = [q for q in cands
                       if q == suffix or q.endswith("::" + suffix)]
            if matches:
                return self.prog.funcs[matches[0]]
        if cs.recv is not None:
            rtype = self._recv_type(cs, enclosing)
            if rtype:
                matches = [q for q in cands
                           if q.endswith(f"::{rtype}::{name}")]
                if matches:
                    return self.prog.funcs[matches[0]]
                # The receiver's type is known and has no such method in the
                # index: this is an external call (std container, stdlib).
                # Falling through to name-only matching here is how
                # `bytes.insert(...)` would alias onto an unrelated class's
                # `insert` — treat it as opaque instead.
                return None
            if name in STD_CONTAINER_METHODS:
                # Untyped receiver + std-container method name: almost
                # certainly a std:: call; never alias it onto project code.
                return None
        # Name-only fallback: drop candidates that cannot be this call —
        # more arguments than parameters, or a free function invoked through
        # a receiver (`vec.insert(...)` must never resolve to a free or
        # unrelated-class `insert`).  This prevents std-container method
        # names from aliasing onto annotated project functions.
        cands = [q for q in cands if self._viable(cs, q)]
        if len(cands) == 1:
            return self.prog.funcs[cands[0]]
        if len(cands) > 1:
            # all candidates agreeing on their effect signature may be merged
            sums = [self.sum[q] for q in cands]
            f0 = self.prog.funcs[cands[0]]
            sig0 = (self.prog.funcs[cands[0]].annots,
                    tuple(sorted(sums[0].sink_params)),
                    tuple(sorted(sums[0].sanitizes)))
            same = all((self.prog.funcs[q].annots,
                        tuple(sorted(self.sum[q].sink_params)),
                        tuple(sorted(self.sum[q].sanitizes))) == sig0
                       for q in cands[1:])
            if same:
                return f0
        return None

    def _viable(self, cs: CallSite, q: str) -> bool:
        cand = self.prog.funcs[q]
        if len(cs.args) > len(cand.params):
            return False
        if cs.recv is not None and cand.cls is None:
            return False
        return True

    def _recv_type(self, cs: CallSite, enclosing: Func):
        if not cs.recv_path:
            return None
        t = enclosing.local_types.get(cs.recv_path[0])
        if t is None and enclosing.cls:
            t = self.prog.fields.get(enclosing.cls, {}).get(cs.recv_path[0])
        for fieldname in cs.recv_path[1:]:
            if t is None:
                return None
            t = self.prog.fields.get(t, {}).get(fieldname)
        return t

    # -- phase 1: derived sanitization ------------------------------------

    def compute_sanitizers(self):
        changed = True
        guard = 0
        while changed and guard < 50:
            changed = False
            guard += 1
            for q, f in self.prog.funcs.items():
                if not f.has_body:
                    continue
                s = self.sum[q]
                pidx = {p.name: i for i, p in enumerate(f.params) if p.name}
                for st in f.stmts:
                    for cs in self._all_calls(st):
                        callee = self.resolve(cs, f)
                        if callee in (None, "FILTER"):
                            continue
                        csum = self.sum[callee.qname]
                        # receiver position: `p.verify(...)`
                        if cs.recv in pidx and csum.sanitizes_all:
                            if pidx[cs.recv] not in s.sanitizes:
                                s.sanitizes.add(pidx[cs.recv])
                                changed = True
                        for ai, arg in enumerate(cs.args):
                            names = set(arg.refs)
                            if len(names) != 1 or arg.calls and \
                                    any(c.name not in ("move",) for c in arg.calls):
                                continue
                            nm = next(iter(names))
                            if nm not in pidx:
                                continue
                            if csum.sanitizes_all or ai in csum.sanitizes:
                                if pidx[nm] not in s.sanitizes:
                                    s.sanitizes.add(pidx[nm])
                                    changed = True

    def _opaque(self, callee: Func) -> bool:
        """Known symbol, but no body and no annotations anywhere: its
        dataflow is unknowable, so treat it like an external function."""
        return (not callee.has_body and not callee.annots
                and not any(p.annots for p in callee.params)
                and not self.sum[callee.qname].sink_params
                and not self.sum[callee.qname].sanitizes)

    @staticmethod
    def _all_calls(st: Stmt):
        out = []

        def rec(calls):
            for c in calls:
                out.append(c)
                for a in c.args:
                    rec(a.calls)
        rec(st.calls)
        return out

    # -- phase 2: taint fixpoint ------------------------------------------

    def run(self):
        self.compute_sanitizers()
        changed = True
        guard = 0
        while changed and guard < 50:
            changed = False
            guard += 1
            self.findings = []
            for q, f in self.prog.funcs.items():
                if not f.has_body:
                    continue
                if self._analyze_function(f):
                    changed = True
        # final pass already produced self.findings
        self._dedupe()

    def _dedupe(self):
        seen = set()
        uniq = []
        for fd in self.findings:
            k = fd.key()
            if k not in seen:
                seen.add(k)
                uniq.append(fd)
        self.findings = uniq

    def _analyze_function(self, f: Func) -> bool:
        """Returns True if f's summary grew."""
        s = self.sum[f.qname]
        state: dict[str, set] = {}
        for i, p in enumerate(f.params):
            atoms = {ParamAtom(i)}
            if ANNOT_UNTRUSTED in p.annots:
                atoms.add(SourceAtom(f"{f.qname} (untrusted param"
                                     f" '{p.name or i}')", f.file, f.line))
            if p.name:
                state[p.name] = atoms
        grew = False

        def eval_arg(arg: Arg) -> set:
            atoms = set()
            for r in arg.refs:
                atoms |= state.get(r, set())
            for c in arg.calls:
                atoms |= call_atoms(c)
            return atoms

        def call_atoms(cs: CallSite) -> set:
            callee = self.resolve(cs, f)
            if callee == "FILTER":
                return set()
            arg_atoms = [eval_arg(a) for a in cs.args]
            recv_atoms = state.get(cs.recv, set()) if cs.recv else set()
            if (callee is None or self._opaque(callee)) and cs.recv \
                    and cs.name in ("find", "at", "count"):
                # Container lookup: the result is a stored value, whose taint
                # is the container's — the lookup KEY does not taint it
                # (selecting a trusted endpoint out of a config map by an
                # attacker-chosen name yields a trusted endpoint).
                return set(recv_atoms)
            if callee is None or self._opaque(callee):
                # Unknown or bodyless-unannotated callee: conservatively
                # propagate every input (including the receiver) to the result.
                out = set(recv_atoms)
                for a in arg_atoms:
                    out |= a
                return out
            csum = self.sum[callee.qname]
            if ANNOT_UNTRUSTED in callee.annots:
                return {SourceAtom(callee.qname, f.file, cs.line)}
            if csum.sanitizes_all:
                return set()
            # A method invoked on a tainted object yields tainted data
            # (readers, serializers, accessors) unless filtered above.
            out = set(recv_atoms)
            if len(callee.qname.split("::")) >= 2 and \
                    callee.qname.split("::")[-1] == callee.qname.split("::")[-2]:
                # constructor: the "return value" is the built object, which
                # absorbs every argument
                for a in arg_atoms:
                    out |= a
            for i in csum.returns_param:
                if i < len(arg_atoms):
                    out |= arg_atoms[i]
            for src in csum.returns_sources:
                out.add(SourceAtom(src[0], f.file, cs.line))
            return out

        def apply_sanitizers(cs: CallSite):
            callee = self.resolve(cs, f)
            if callee in (None, "FILTER"):
                return
            csum = self.sum[callee.qname]
            if csum.sanitizes_all:
                if cs.recv:
                    state[cs.recv] = set()
                for a in cs.args:
                    for r in a.refs:
                        state[r] = set()
            else:
                for i in csum.sanitizes:
                    if i < len(cs.args):
                        for r in cs.args[i].refs:
                            state[r] = set()

        def check_sinks(cs: CallSite):
            nonlocal grew
            callee = self.resolve(cs, f)
            if callee in (None, "FILTER"):
                return
            csum = self.sum[callee.qname]
            for i, paths in csum.sink_params.items():
                if i >= len(cs.args):
                    continue
                atoms = eval_arg(cs.args[i])
                if not atoms:
                    continue
                # If the parameter is itself sink-annotated (a chainless
                # path ending at the callee), that IS the boundary — do not
                # also report the paths it forwards to further down.
                direct = [p for p in paths
                          if p.sink == callee.qname and not p.chain]
                if direct:
                    paths = direct
                for path in paths:
                    if len(path.chain) >= MAX_CHAIN:
                        continue
                    hop = (f.qname, f.file, cs.line)
                    for atom in atoms:
                        if isinstance(atom, SourceAtom):
                            self.findings.append(Finding(
                                enclosing=f.qname, file=f.file, line=cs.line,
                                source=atom,
                                sink=SinkPath(path.sink, path.sink_file,
                                              path.sink_line,
                                              (hop,) + path.chain)))
                        elif isinstance(atom, ParamAtom):
                            j = atom[0]
                            lst = self.sum[f.qname].sink_params.setdefault(j, [])
                            np = SinkPath(path.sink, path.sink_file,
                                          path.sink_line, (hop,) + path.chain)
                            if not any(e.sink == np.sink and e.chain == np.chain
                                       for e in lst):
                                lst.append(np)
                                grew = True

        def check_return(st: Stmt):
            nonlocal grew
            atoms = set()
            for r in st.refs:
                atoms |= state.get(r, set())
            for c in st.calls:
                atoms |= call_atoms(c)
            s_here = self.sum[f.qname]
            if s_here.return_sink:
                for atom in atoms:
                    if isinstance(atom, SourceAtom):
                        self.findings.append(Finding(
                            enclosing=f.qname, file=f.file, line=st.line,
                            source=atom,
                            sink=SinkPath(f"{f.qname} (return)", f.file,
                                          f.line, ((f.qname, f.file, st.line),))))
                    elif isinstance(atom, ParamAtom):
                        j = atom[0]
                        lst = s_here.sink_params.setdefault(j, [])
                        np = SinkPath(f"{f.qname} (return)", f.file, f.line,
                                      ((f.qname, f.file, st.line),))
                        if not any(e.sink == np.sink for e in lst):
                            lst.append(np)
                            grew = True
            if s_here.sanitizes_all or ANNOT_SANITIZER in f.annots:
                return  # sanitizer's return is clean by contract
            for atom in atoms:
                if isinstance(atom, ParamAtom):
                    if atom[0] not in s_here.returns_param:
                        s_here.returns_param.add(atom[0])
                        grew = True
                elif isinstance(atom, SourceAtom):
                    if atom not in s_here.returns_sources \
                            and len(s_here.returns_sources) < 8:
                        s_here.returns_sources.add(atom)
                        grew = True

        if ANNOT_UNTRUSTED in f.annots:
            src = SourceAtom(f.qname, f.file, f.line)
            if src not in s.returns_sources:
                s.returns_sources.add(src)
                grew = True

        # Two passes over the (linearized) statements: the second pass starts
        # from the first pass's end state, which approximates loop back-edges
        # (`node = reply->parent` feeding next iteration's dial).  Findings
        # and summary updates are deduplicated, so the repeat is harmless.
        for _pass in (0, 1):
            self._walk(f, state, eval_arg, call_atoms, apply_sanitizers,
                       check_sinks, check_return)
        return grew

    def _walk(self, f, state, eval_arg, call_atoms, apply_sanitizers,
              check_sinks, check_return):
        for st in f.stmts:
            # Sinks are checked against the PRE-state: arguments are
            # evaluated before the callee runs, so a sanitizer cannot bless
            # the very call that smuggles its argument to a sink.
            for cs in self._all_calls(st):
                check_sinks(cs)
            for cs in self._all_calls(st):
                apply_sanitizers(cs)
            if st.is_return:
                check_return(st)
            if st.lhs is not None:
                atoms = set()
                for r in st.refs:
                    atoms |= state.get(r, set())
                for c in st.calls:
                    atoms |= call_atoms(c)
                if st.lhs_is_member or st.compound:
                    state[st.lhs] = state.get(st.lhs, set()) | atoms
                else:
                    state[st.lhs] = atoms
            else:
                # mutating call on a receiver with tainted arguments: an
                # opaque method (push_back, add_cert, ...) may store them
                for cs in st.calls:
                    callee = self.resolve(cs, f)
                    if cs.recv and (callee is None or
                                    callee != "FILTER" and self._opaque(callee)):
                        extra = set()
                        for a in cs.args:
                            extra |= eval_arg(a)
                        if extra:
                            state[cs.recv] = state.get(cs.recv, set()) | extra


# --------------------------------------------------------------------------
# Baseline
# --------------------------------------------------------------------------

def load_baseline(path):
    """Lines: `enclosing | source -> sink  # justification` (justification
    required)."""
    entries = {}
    if not os.path.exists(path):
        return entries
    for lineno, raw in enumerate(open(path, encoding="utf-8"), 1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        if "#" not in line:
            raise SystemExit(
                f"{path}:{lineno}: baseline entry lacks a justification "
                "comment — every suppression must say why")
        key = line.split("#", 1)[0].strip()
        entries[key] = {"line": lineno, "used": False}
    return entries


# --------------------------------------------------------------------------
# Reporting & drivers
# --------------------------------------------------------------------------

def render(fd: Finding) -> str:
    lines = [
        "TAINT: untrusted data reaches trusted sink without sanitization",
        f"  source: {fd.source[0]}",
        f"          reaches taint at {fd.source[1]}:{fd.source[2]}",
        f"  sink:   {fd.sink.sink} ({fd.sink.sink_file}:{fd.sink.sink_line})",
        "  path:",
    ]
    for func, file, line in fd.sink.chain:
        lines.append(f"    {func} at {file}:{line}")
    lines.append(f"  suppression key: {fd.key()}")
    return "\n".join(lines)


def collect_sources(root):
    out = []
    for base, _dirs, files in os.walk(root):
        for fn in sorted(files):
            if fn.endswith((".hpp", ".cpp", ".h", ".cc")):
                out.append(os.path.join(base, fn))
    return out


def build_program(paths, frontend, cc_dir):
    if frontend in ("clang", "auto"):
        try:
            prog = build_program_clang(paths, cc_dir)
            return prog, "clang"
        except ImportError:
            if frontend == "clang":
                raise SystemExit(
                    "frontend 'clang' requested but python libclang is not "
                    "importable (pip install libclang); use --frontend lite")
            print("[taint] libclang unavailable; using lite frontend",
                  file=sys.stderr)
        except RuntimeError as e:
            if frontend == "clang":
                raise SystemExit(f"clang frontend failed: {e}")
            print(f"[taint] clang frontend failed ({e}); using lite frontend",
                  file=sys.stderr)
    files = []
    for p in paths:
        if os.path.isdir(p):
            files.extend(collect_sources(p))
        else:
            files.append(p)
    return build_program_lite(files), "lite"


def analyze(paths, frontend, cc_dir, verbose=False):
    prog, used = build_program(paths, frontend, cc_dir)
    an = Analyzer(prog, verbose=verbose)
    an.run()
    return an, used


def run_tree(args):
    paths = args.paths or [os.path.join(REPO, "src")]
    an, used = analyze(paths, args.frontend, args.compile_commands,
                       args.verbose)
    baseline = load_baseline(args.baseline)
    new = []
    for fd in an.findings:
        ent = baseline.get(fd.key())
        if ent is not None:
            ent["used"] = True
        else:
            new.append(fd)
    rc = 0
    for fd in new:
        print(render(fd))
        print()
        rc = 1
    stale = [k for k, e in baseline.items() if not e["used"]]
    for k in stale:
        print(f"STALE BASELINE: `{k}` no longer matches any finding — "
              f"remove it from {os.path.relpath(args.baseline, REPO)}")
        if args.strict_baseline:
            rc = 1
    n_funcs = len(an.prog.funcs)
    n_annot = sum(1 for f in an.prog.funcs.values()
                  if f.annots or any(p.annots for p in f.params))
    print(f"[taint] frontend={used} functions={n_funcs} annotated={n_annot} "
          f"findings={len(an.findings)} suppressed="
          f"{len(an.findings) - len(new)} new={len(new)}")
    if rc == 0:
        print("[taint] OK: every untrusted-byte path is sanitized or "
              "has a justified suppression")
    return rc


def run_list(args):
    paths = args.paths or [os.path.join(REPO, "src")]
    prog, used = build_program(paths, args.frontend, args.compile_commands)
    for q in sorted(prog.funcs):
        f = prog.funcs[q]
        tags = sorted(f.annots)
        ptags = [f"{p.name or i}:{'|'.join(sorted(p.annots))}"
                 for i, p in enumerate(f.params) if p.annots]
        if tags or ptags:
            print(f"{q}  [{', '.join(tags)}]  {' '.join(ptags)}  "
                  f"({f.file}:{f.line})")
    return 0


EXPECT_RE = re.compile(
    r"//\s*TAINT-EXPECT:\s*(clean|flag(?:\s+source=(\S+))?(?:\s+sink=(\S+))?)")


def run_self_test(args):
    fixture_dir = os.path.join(REPO, "tests", "taint", "fixtures")
    if not os.path.isdir(fixture_dir):
        print(f"no fixture directory at {fixture_dir}", file=sys.stderr)
        return 2
    fixtures = sorted(f for f in os.listdir(fixture_dir) if f.endswith(".cpp"))
    failures = []
    for fx in fixtures:
        path = os.path.join(fixture_dir, fx)
        raw = open(path, encoding="utf-8").read()
        expects = EXPECT_RE.findall(raw)
        if not expects:
            failures.append(f"{fx}: no TAINT-EXPECT comment")
            continue
        prog = build_program_lite([path])
        an = Analyzer(prog)
        an.run()
        want_clean = any(e[0] == "clean" for e in expects)
        flags = [e for e in expects if e[0].startswith("flag")]
        if want_clean and an.findings:
            failures.append(
                f"{fx}: expected clean, got {len(an.findings)} finding(s):\n"
                + "\n".join("    " + f.key() for f in an.findings))
            continue
        if not want_clean:
            unmatched_expect = []
            for _e, src, sink in flags:
                ok = any((not src or src in fd.source[0]) and
                         (not sink or sink in fd.sink.sink)
                         for fd in an.findings)
                if not ok:
                    unmatched_expect.append(f"source={src} sink={sink}")
            extra = [fd for fd in an.findings
                     if not any((not src or src in fd.source[0]) and
                                (not sink or sink in fd.sink.sink)
                                for _e, src, sink in flags)]
            if unmatched_expect:
                failures.append(
                    f"{fx}: expected finding not produced: "
                    f"{'; '.join(unmatched_expect)}\n    got: "
                    + ("; ".join(fd.key() for fd in an.findings) or "nothing"))
            if extra:
                failures.append(
                    f"{fx}: unexpected finding(s): "
                    + "; ".join(fd.key() for fd in extra))
    # Baseline machinery self-test: a finding listed in a baseline must be
    # suppressed, an unused entry must be reported as stale.
    bl_fx = [f for f in fixtures if "baseline" in f]
    print(f"[taint] self-test: {len(fixtures)} fixtures, "
          f"{len(failures)} failure(s)")
    for msg in failures:
        print("  FAIL " + msg)
    if len(fixtures) < 15:
        print(f"  FAIL corpus too small: {len(fixtures)} fixtures (< 15)")
        return 1
    return 1 if failures else 0


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("paths", nargs="*", help="files/dirs (default: src/)")
    ap.add_argument("--frontend", choices=("auto", "clang", "lite"),
                    default="auto")
    ap.add_argument("--compile-commands", default=os.path.join(REPO, "build"),
                    help="directory containing compile_commands.json")
    ap.add_argument("--baseline",
                    default=os.path.join(REPO, "tools", "taint_baseline.txt"))
    ap.add_argument("--strict-baseline", action="store_true",
                    help="stale baseline entries are errors")
    ap.add_argument("--self-test", action="store_true")
    ap.add_argument("--list", action="store_true",
                    help="dump annotated functions and exit")
    ap.add_argument("--verbose", action="store_true")
    args = ap.parse_args()
    if args.self_test:
        sys.exit(run_self_test(args))
    if args.list:
        sys.exit(run_list(args))
    sys.exit(run_tree(args))


if __name__ == "__main__":
    main()
