#!/usr/bin/env python3
"""Schema-aware comparator for BENCH_*.json artifacts (the perf CI gate).

Usage:
  tools/perf_diff.py BASE.json NEW.json [--tolerances tools/perf_tolerances.txt]
                     [--all] [--self-test]

Loads two bench artifacts (either shape: a single {"bench", "metrics"} object
or a merged {"artifact", "benches": [...]}), matches series by
(bench, metric name, label set) and compares:

  counter / gauge  -> value
  histogram        -> count and the p99 estimate

Per-metric noise tolerances come from a checked-in rules file (first match
wins, see tools/perf_tolerances.txt for the format).  A delta beyond
tolerance is a REGRESSION unless the matching rule declares a better
direction (better:down for latencies, better:up for throughputs) and the
delta moved that way — then it is an IMPROVEMENT call-out.  Metrics only in
NEW are reported as added (informational); metrics only in BASE are
regressions (a bench silently dropping a series must not pass) unless a
`skip` rule covers them.  Exit status: 0 clean, 1 regressions, 2 usage.

Stdlib only: json, fnmatch, argparse.
"""

from __future__ import annotations

import argparse
import fnmatch
import json
import sys
from pathlib import Path

OK = "ok"
SKIPPED = "skipped"
ADDED = "added"
REMOVED = "removed"
REGRESSION = "REGRESSION"
IMPROVEMENT = "improvement"

FAILING = {REGRESSION, REMOVED}


def load_artifact(path):
    """Returns {(bench, name, labels_tuple, field): float} for one file."""
    with open(path) as f:
        doc = json.load(f)
    benches = doc["benches"] if "benches" in doc else [doc]
    series = {}
    for bench in benches:
        bench_name = bench["bench"]
        for sample in bench["metrics"]:
            labels = tuple(sorted(sample.get("labels", {}).items()))
            base_key = (bench_name, sample["name"], labels)
            kind = sample.get("kind", "counter")
            if kind == "histogram":
                series[base_key + ("count",)] = float(sample.get("count", 0))
                series[base_key + ("p99",)] = float(sample.get("p99", 0))
            else:
                series[base_key + ("value",)] = float(sample.get("value", 0))
    return series


class Rule:
    """One tolerance line: glob + optional label filter + directives."""

    def __init__(self, name_glob, label_glob, directives, line_no):
        self.name_glob = name_glob
        self.label_glob = label_glob  # "k=v,k=v" with glob values, or "*"
        self.skip = False
        self.rel = None  # percent
        self.abs = None  # absolute units
        self.better = None  # "up" / "down"
        self.line_no = line_no
        for d in directives:
            if d == "skip":
                self.skip = True
            elif d.startswith("rel:"):
                self.rel = float(d[4:])
            elif d.startswith("abs:"):
                self.abs = float(d[4:])
            elif d.startswith("better:"):
                if d[7:] not in ("up", "down"):
                    raise ValueError(f"bad direction {d!r}")
                self.better = d[7:]
            else:
                raise ValueError(f"unknown directive {d!r}")

    def matches(self, name, labels):
        if not fnmatch.fnmatchcase(name, self.name_glob):
            return False
        if self.label_glob == "*":
            return True
        have = dict(labels)
        for pair in self.label_glob.split(","):
            key, _, want = pair.partition("=")
            if key not in have or not fnmatch.fnmatchcase(have[key], want):
                return False
        return True


def parse_tolerances(path):
    rules = []
    for line_no, raw in enumerate(Path(path).read_text().splitlines(), 1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        parts = line.split()
        if len(parts) < 3:
            raise ValueError(f"{path}:{line_no}: expected NAME LABELS RULES")
        try:
            rules.append(Rule(parts[0], parts[1], parts[2:], line_no))
        except ValueError as e:
            raise ValueError(f"{path}:{line_no}: {e}") from None
    return rules


def find_rule(rules, name, labels):
    for rule in rules:
        if rule.matches(name, labels):
            return rule
    return None


def classify(base, new, rule):
    """Returns (status, delta_pct) for one matched series."""
    if rule is not None and rule.skip:
        return SKIPPED, None
    delta = new - base
    if base != 0:
        delta_pct = 100.0 * delta / abs(base)
    else:
        delta_pct = None if delta == 0 else float("inf")
    rel_tol = rule.rel if rule is not None else 0.0
    abs_tol = rule.abs if rule is not None else 0.0
    within_abs = abs_tol is not None and abs(delta) <= (abs_tol or 0.0)
    within_rel = (
        rel_tol is not None
        and base != 0
        and abs(delta) <= abs(base) * (rel_tol or 0.0) / 100.0
    )
    if delta == 0 or within_abs or within_rel:
        return OK, delta_pct
    better = rule.better if rule is not None else None
    if better == "down" and delta < 0:
        return IMPROVEMENT, delta_pct
    if better == "up" and delta > 0:
        return IMPROVEMENT, delta_pct
    return REGRESSION, delta_pct


def series_label(key):
    bench, name, labels, field = key
    label_text = ",".join(f"{k}={v}" for k, v in labels)
    text = f"{bench}:{name}"
    if label_text:
        text += "{" + label_text + "}"
    if field != "value":
        text += f".{field}"
    return text


def fmt_pct(delta_pct):
    if delta_pct is None:
        return "-"
    if delta_pct == float("inf"):
        return "new!=0"
    return f"{delta_pct:+.2f}%"


def diff(base_series, new_series, rules, show_all):
    rows = []
    counts = dict.fromkeys(
        [OK, SKIPPED, ADDED, REMOVED, REGRESSION, IMPROVEMENT], 0
    )
    for key in sorted(set(base_series) | set(new_series)):
        _, name, labels, _ = key
        rule = find_rule(rules, name, labels)
        if key not in new_series:
            status = SKIPPED if (rule is not None and rule.skip) else REMOVED
            rows.append((status, key, base_series[key], None, None))
        elif key not in base_series:
            status = SKIPPED if (rule is not None and rule.skip) else ADDED
            rows.append((status, key, None, new_series[key], None))
        else:
            status, delta_pct = classify(base_series[key], new_series[key], rule)
            rows.append((status, key, base_series[key], new_series[key], delta_pct))
        counts[rows[-1][0]] += 1

    interesting = {REGRESSION, IMPROVEMENT, REMOVED, ADDED}
    printed_header = False
    for status, key, base, new, delta_pct in rows:
        if not show_all and status not in interesting:
            continue
        if not printed_header:
            print(f"{'status':<12} {'base':>16} {'new':>16} {'delta':>10}  series")
            printed_header = True
        base_text = "-" if base is None else f"{base:.6g}"
        new_text = "-" if new is None else f"{new:.6g}"
        print(
            f"{status:<12} {base_text:>16} {new_text:>16} "
            f"{fmt_pct(delta_pct):>10}  {series_label(key)}"
        )
    summary = ", ".join(f"{v} {k}" for k, v in counts.items() if v)
    print(f"perf_diff: {summary}" if summary else "perf_diff: no series compared")
    if counts[REGRESSION] or counts[REMOVED]:
        print(
            f"perf_diff: FAIL — {counts[REGRESSION]} regression(s), "
            f"{counts[REMOVED]} removed series beyond tolerance"
        )
        return 1
    return 0


# --- self-test --------------------------------------------------------------

SELF_TEST_BASE = {
    "bench": "t",
    "metrics": [
        {"name": "a.count", "labels": {}, "kind": "counter", "value": 100},
        {"name": "a.lat_ms", "labels": {"m": "x"}, "kind": "gauge", "value": 10.0},
        {"name": "a.gone", "labels": {}, "kind": "counter", "value": 5},
        {"name": "a.noisy_ns", "labels": {}, "kind": "gauge", "value": 1000.0},
        {
            "name": "a.hist",
            "labels": {},
            "kind": "histogram",
            "sum": 10,
            "count": 4,
            "p50": 1,
            "p90": 2,
            "p99": 2.5,
            "buckets": [],
        },
    ],
}

SELF_TEST_TOLERANCES = """
a.noisy_ns  *  skip
a.lat_ms    m=x  rel:5 better:down
a.hist      *  rel:10
*           *  rel:0
"""

SELF_TEST_CASES = [
    # (mutation of the NEW artifact, expected exit, expected marker in output)
    ("identical", lambda m: None, 0, "ok"),
    ("counter regression", lambda m: m.update(value=101), 1, "REGRESSION"),
    ("latency regression", lambda m: m.update(value=12.0), 1, "REGRESSION"),
    ("latency improvement", lambda m: m.update(value=8.0), 0, "improvement"),
    ("noisy skipped", lambda m: m.update(value=9999.0), 0, "skipped"),
    ("removed fails", lambda m: None, 1, "removed"),
    ("hist p99 within tol", lambda m: m.update(p99=2.6), 0, "ok"),
    ("hist p99 beyond tol", lambda m: m.update(p99=3.5), 1, "REGRESSION"),
]


def run_self_test():
    import contextlib
    import copy
    import io
    import tempfile

    failures = 0
    with tempfile.TemporaryDirectory() as tmp:
        tol_path = Path(tmp, "tol.txt")
        tol_path.write_text(SELF_TEST_TOLERANCES)
        rules = parse_tolerances(tol_path)
        for name, mutate, expected_exit, marker in SELF_TEST_CASES:
            new_doc = copy.deepcopy(SELF_TEST_BASE)
            by_name = {m["name"]: m for m in new_doc["metrics"]}
            if name == "counter regression":
                mutate(by_name["a.count"])
            elif name in ("latency regression", "latency improvement"):
                mutate(by_name["a.lat_ms"])
            elif name == "noisy skipped":
                mutate(by_name["a.noisy_ns"])
            elif name == "removed fails":
                new_doc["metrics"] = [
                    m for m in new_doc["metrics"] if m["name"] != "a.gone"
                ]
            elif name.startswith("hist"):
                mutate(by_name["a.hist"])
            base_path = Path(tmp, "base.json")
            new_path = Path(tmp, "new.json")
            base_path.write_text(json.dumps(SELF_TEST_BASE))
            new_path.write_text(json.dumps(new_doc))
            out = io.StringIO()
            with contextlib.redirect_stdout(out):
                exit_code = diff(
                    load_artifact(base_path), load_artifact(new_path), rules, True
                )
            ok = exit_code == expected_exit and marker in out.getvalue()
            print(f"self-test {'PASS' if ok else 'FAIL'}: {name}")
            if not ok:
                failures += 1
                print(out.getvalue())
    if failures:
        print(f"perf_diff self-test: {failures} case(s) FAILED")
        return 1
    print(f"perf_diff self-test: all {len(SELF_TEST_CASES)} cases passed")
    return 0


def main(argv):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("base", nargs="?", help="baseline BENCH json")
    parser.add_argument("new", nargs="?", help="candidate BENCH json")
    parser.add_argument(
        "--tolerances", default=None, help="tolerance rules file (default: none)"
    )
    parser.add_argument(
        "--all", action="store_true", help="print every series, not just call-outs"
    )
    parser.add_argument("--self-test", action="store_true")
    args = parser.parse_args(argv)
    if args.self_test:
        return run_self_test()
    if args.base is None or args.new is None:
        parser.print_usage()
        return 2
    rules = parse_tolerances(args.tolerances) if args.tolerances else []
    return diff(load_artifact(args.base), load_artifact(args.new), rules, args.all)


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
