#!/usr/bin/env python3
"""Concurrency-hazard analysis for the GlobeDoc tree (DESIGN.md §13).

Turns the repo's comment-only locking conventions into machine-checked
invariants, ahead of the async-reactor rewrite that will multiply the
concurrency surface.  Two analyses run over one interprocedural call-graph
fixpoint:

  * lock-order — every `util::Mutex` / `util::RecursiveMutex` member holds
    a rank in tools/lock_hierarchy.txt (lower rank = outer lock, acquired
    first).  The analyzer extracts the static lock-acquisition graph from
    LockGuard/UniqueLock/RecursiveLockGuard sites — including locks held
    across calls, via per-function acquisition summaries — and reports any
    edge that runs against the declared order or touches an unranked
    mutex, with cycle detection over the whole graph and full
    acquisition-chain diagnostics.

  * blocking-under-lock — the GLOBE_BLOCKING attribute
    (src/util/thread_annotations.hpp, expands to [[clang::annotate]])
    marks primitives that park the calling thread: Transport::call, RPC
    client calls, condvar waits, SingleFlight coalescing, sleeps.
    Blocking-ness propagates transitively through the call graph; any
    path that reaches a blocking call while a lock is held is a finding.
    The one modeled exemption is a condition-variable wait releasing its
    OWN lock (`cv_.wait(lock)`); any other lock held across the wait
    still flags.

Two interchangeable frontends produce the same per-function event IR
(mirroring tools/taint_check.py):

  * ``clang`` — libclang over compile_commands.json; reads the
    [[clang::annotate("globe::blocking")]] attribute.  Used in CI.
  * ``lite``  — stdlib-only tokenizer recognizing the GLOBE_* macros and
    guard declarations textually, so plain ``ctest`` enforces the
    invariant on toolchains without clang.

Intentional holds (e.g. the proxy's documented one-browser-one-proxy
serialization) are suppressed through tools/conc_baseline.txt, which
requires a written justification per entry.

Exit status: 0 = clean (modulo baseline), 1 = findings or stale baseline,
2 = usage/environment error.

Usage:
  tools/conc_check.py [--frontend auto|clang|lite] [paths...]
  tools/conc_check.py --self-test           # fixture corpus in tests/conc/
  tools/conc_check.py --edges               # dump the acquisition graph
  tools/conc_check.py --list                # dump mutexes + blocking fns
"""

from __future__ import annotations

import argparse
import os
import re
import sys
from dataclasses import dataclass, field

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

ANNOT_BLOCKING = "blocking"

CLANG_ANNOTATION_OF = {"globe::blocking": ANNOT_BLOCKING}

GUARD_KINDS = {"LockGuard": "guard", "RecursiveLockGuard": "guard_rec",
               "UniqueLock": "unique"}

MUTEX_TYPES = {"Mutex": "mutex", "RecursiveMutex": "recursive"}

# Thread primitives that park the calling thread without an annotation of
# their own (std::this_thread & friends).
SLEEP_FNS = {"sleep_for", "sleep_until", "usleep", "nanosleep"}

# Method names of std:: containers/strings: a receiver call with one of
# these names and an unknown receiver type must never alias onto project
# code through name-only resolution (same guard as taint_check.py).
STD_CONTAINER_METHODS = {
    "insert", "erase", "assign", "append", "push_back", "pop_back",
    "emplace", "emplace_back", "find", "count", "at", "substr", "clear",
    "resize", "reserve", "begin", "end", "front", "back", "data", "c_str",
    "str", "push", "pop", "top", "get", "reset", "swap", "size", "empty",
}

MAX_CHAIN = 8  # call-chain depth cap in diagnostics


# --------------------------------------------------------------------------
# Shared IR
# --------------------------------------------------------------------------

@dataclass
class CallSite:
    line: int = 0
    chain: list = field(default_factory=list)
    explicit: bool = False
    recv: str | None = None
    recv_path: list = field(default_factory=list)
    nargs: int = 0
    arg_refs: list = field(default_factory=list)   # flattened ident refs
    lambdas: list = field(default_factory=list)    # lifted lambda qnames in args
    lambda_target: str | None = None               # IIFE / direct lambda call

    @property
    def name(self):
        return self.chain[-1] if self.chain else ""


@dataclass
class Ev:
    """One concurrency-relevant event, in textual order.

    kind: 'acq'  guard declaration        (var, lock, guard)
          'rel'  guard leaves scope       (var)
          'mlock'/'munlock' manual calls  (lock)
          'wait' condvar wait on a guard  (var)
          'call' any other call           (cs)
    lock: either a tuple of ident chain ('mu_',) / ('host','lock') or a
          clang-resolved ('::', Class, member) triple.
    """
    kind: str
    line: int = 0
    var: str | None = None
    lock: tuple = ()
    guard: str = ""
    cs: CallSite | None = None


@dataclass
class Func:
    qname: str = ""
    file: str = ""
    line: int = 0
    cls: str | None = None
    annots: set = field(default_factory=set)
    params: list = field(default_factory=list)     # param names
    events: list = field(default_factory=list)
    has_body: bool = False
    local_types: dict = field(default_factory=dict)
    requires: set = field(default_factory=set)     # set[tuple chain]


@dataclass
class Program:
    funcs: dict = field(default_factory=dict)
    by_name: dict = field(default_factory=dict)
    fields: dict = field(default_factory=dict)     # class -> {field -> type}
    mutexes: dict = field(default_factory=dict)    # lockid -> info dict
    member_owner: dict = field(default_factory=dict)  # member -> [lockid]

    def add(self, f: Func):
        prev = self.funcs.get(f.qname)
        if prev is None:
            self.funcs[f.qname] = f
            self.by_name.setdefault(f.qname.split("::")[-1], []).append(f.qname)
            return
        prev.annots |= f.annots
        prev.requires |= f.requires
        if f.has_body and not prev.has_body:
            prev.events, prev.has_body = f.events, True
            prev.file, prev.line = f.file, f.line
            prev.local_types.update(f.local_types)
            prev.params = f.params or prev.params

    def register_mutex(self, subsys, cls, member, kind, file, line):
        lockid = f"{subsys}.{cls}.{member}"
        if lockid not in self.mutexes:
            self.mutexes[lockid] = {"cls": cls, "member": member,
                                    "kind": kind, "file": file, "line": line}
            self.member_owner.setdefault(member, []).append(lockid)

    def lock_by_cls(self, cls, member):
        for lid, info in self.mutexes.items():
            if info["cls"] == cls and info["member"] == member:
                return lid
        return None


def subsys_of(relpath: str) -> str:
    parts = relpath.replace("\\", "/").split("/")
    if parts[0] == "src" and len(parts) >= 3:
        return parts[1]
    return "test"


# --------------------------------------------------------------------------
# Lite frontend
# --------------------------------------------------------------------------

_TOKEN_RE = re.compile(
    r"""[A-Za-z_]\w*
      | 0[xX][0-9a-fA-F']+ | \d[\d.'eEfuUlL]*
      | ::|->\*?|\.\*|<<=|>>=|<=>|==|!=|<=|>=|&&|\|\||\+=|-=|\*=|/=|%=|\|=|&=|\^=|<<|>>|\+\+|--
      | [{}()\[\];,<>=!&|*+\-/%?:~^.\#@]
    """,
    re.VERBOSE,
)

_KEYWORDS = {
    "if", "else", "for", "while", "do", "switch", "case", "default", "break",
    "continue", "return", "goto", "try", "catch", "throw", "new", "delete",
    "sizeof", "alignof", "static_cast", "dynamic_cast", "const_cast",
    "reinterpret_cast", "true", "false", "nullptr", "this", "const",
    "constexpr", "static", "inline", "virtual", "override", "final",
    "noexcept", "mutable", "explicit", "auto", "void", "bool", "char", "int",
    "unsigned", "signed", "long", "short", "float", "double", "class",
    "struct", "enum", "union", "namespace", "using", "typedef", "template",
    "typename", "public", "private", "protected", "friend", "operator",
    "co_await", "co_return", "co_yield", "std",
}

# Macro tokens that may sit in a declarator's qualifier zone.  All are
# skipped (with their argument lists); GLOBE_REQUIRES and GLOBE_BLOCKING
# additionally feed the IR.
_QUAL_MACROS = {"GLOBE_EXCLUDES", "GLOBE_REQUIRES", "GLOBE_GUARDED_BY",
                "GLOBE_PT_GUARDED_BY", "GLOBE_ACQUIRE", "GLOBE_RELEASE",
                "GLOBE_NO_THREAD_SAFETY_ANALYSIS", "GLOBE_SCOPED_CAPABILITY",
                "GLOBE_ACQUIRED_BEFORE", "GLOBE_ACQUIRED_AFTER",
                "GLOBE_TRY_ACQUIRE", "GLOBE_ASSERT_CAPABILITY",
                "GLOBE_RETURN_CAPABILITY", "GLOBE_REQUIRES_SHARED"}
_PREFIX_MACROS = {"GLOBE_BLOCKING", "GLOBE_UNTRUSTED", "GLOBE_SANITIZER",
                  "GLOBE_TRUSTED_SINK", "GLOBE_CAPABILITY"}
_NOISE_IDENTS = _QUAL_MACROS | _PREFIX_MACROS

_CONTROL = {"if", "for", "while", "switch", "catch", "else", "do", "try"}

_LAMBDA_PREV = {None, "(", ",", "=", "return", "{", ";", ":", "?",
                "&&", "||", "!", "(", "co_return"}


def _strip_comments(text: str) -> str:
    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        if c == "/" and i + 1 < n and text[i + 1] == "/":
            j = text.find("\n", i)
            i = n if j < 0 else j
        elif c == "/" and i + 1 < n and text[i + 1] == "*":
            j = text.find("*/", i + 2)
            seg = text[i:(n if j < 0 else j + 2)]
            out.append("\n" * seg.count("\n"))
            i = n if j < 0 else j + 2
        elif c == "'" and i > 0 and text[i - 1] in "0123456789abcdefABCDEF" \
                and i + 1 < n and text[i + 1].isalnum():
            i += 1  # digit separator (1'000'000), not a char literal
        elif c in "\"'":
            quote, j = c, i + 1
            while j < n and text[j] != quote:
                j += 2 if text[j] == "\\" else 1
            out.append('""' if quote == '"' else "0")
            i = min(j + 1, n)
        elif c == "#" and (i == 0 or text[i - 1] == "\n"):
            j = i
            while j < n:
                k = text.find("\n", j)
                if k < 0:
                    j = n
                    break
                if text[k - 1] == "\\":
                    j = k + 1
                    continue
                j = k
                break
            seg = text[i:j]
            out.append("\n" * seg.count("\n"))
            i = j
        else:
            out.append(c)
            i += 1
    return "".join(out)


def _tokenize(text: str):
    toks = []
    line = 1
    pos = 0
    for m in _TOKEN_RE.finditer(text):
        line += text.count("\n", pos, m.start())
        pos = m.start()
        toks.append((m.group(0), line))
    return toks


def _match_forward(toks, i, open_t, close_t):
    depth = 0
    while i < len(toks):
        t = toks[i][0]
        if t == open_t:
            depth += 1
        elif t == close_t:
            depth -= 1
            if depth == 0:
                return i + 1
        i += 1
    return len(toks)


def _split_top(toks, sep=","):
    parts, cur = [], []
    p = a = 0
    for tk in toks:
        t = tk[0]
        if t in "([{":
            p += 1
        elif t in ")]}":
            p -= 1
        elif t == "<":
            a += 1
        elif t == ">" and a > 0:
            a -= 1
        if t == sep and p == 0 and a == 0:
            parts.append(cur)
            cur = []
        else:
            cur.append(tk)
    parts.append(cur)
    return parts


def _chain_of(toks):
    """Token list -> ident chain tuple, dropping this/namespaces/derefs."""
    out = []
    for tk in toks:
        t = tk[0]
        if re.match(r"[A-Za-z_]", t) and t not in _KEYWORDS \
                and t not in ("util", "globe", "std") and t not in _NOISE_IDENTS:
            out.append(t)
    return tuple(out)


def _parse_expr(toks):
    """Expression token list -> (refs, calls).  Mirrors taint_check.py."""
    refs, calls = [], []
    i = 0
    n = len(toks)
    while i < n:
        t, line = toks[i]
        if re.match(r"[A-Za-z_]", t) and t not in _KEYWORDS \
                and t not in _NOISE_IDENTS:
            chain, seps = [t], []
            j = i + 1
            while j + 1 < n and toks[j][0] in ("::", ".", "->") \
                    and re.match(r"[A-Za-z_]", toks[j + 1][0]) \
                    and toks[j + 1][0] not in _KEYWORDS:
                seps.append(toks[j][0])
                chain.append(toks[j + 1][0])
                j += 2
            if j < n and toks[j][0] == "(":
                cs = CallSite(line=line, chain=chain)
                if seps and seps[-1] in (".", "->"):
                    cs.recv_path = chain[:-1]
                    cs.recv = cs.recv_path[0]
                else:
                    cs.explicit = bool(seps)
                end = _match_forward(toks, j, "(", ")")
                inner = toks[j + 1:end - 1]
                for part in _split_top(inner):
                    if not part:
                        continue
                    cs.nargs += 1
                    arefs, acalls = _parse_expr(part)
                    cs.arg_refs.extend(arefs)
                    calls.extend(acalls)       # nested calls flattened
                calls.append(cs)
                i = end
                continue
            if seps and all(s == "::" for s in seps):
                i = j
                continue
            refs.append(chain[0])
            i = j
            continue
        i += 1
    return refs, calls


# ---- lambda lifting -------------------------------------------------------

def _lift_lambdas(toks, owner_qname, owner_cls, owner_locals, sink, counter):
    """Replaces every lambda literal in `toks` with a placeholder ident and
    appends (qname, param_toks, body_toks, line) records to `sink`.
    Nested lambdas are lifted recursively.  Returns the rewritten tokens."""
    out = []
    i, n = 0, len(toks)
    while i < n:
        t, line = toks[i]
        if t == "[":
            prev = out[-1][0] if out else None
            # `[[` attribute or indexing (`x[i]`) are not lambdas.
            nxt = toks[i + 1][0] if i + 1 < n else None
            if prev in _LAMBDA_PREV and nxt != "[":
                close = _match_forward(toks, i, "[", "]")
                k = close
                param_toks = []
                if k < n and toks[k][0] == "(":
                    pend = _match_forward(toks, k, "(", ")")
                    param_toks = toks[k + 1:pend - 1]
                    k = pend
                # specifiers / trailing return up to the body brace
                ok = True
                while k < n and toks[k][0] != "{":
                    if toks[k][0] in (";", ")", ","):
                        ok = False
                        break
                    k += 1
                if ok and k < n and toks[k][0] == "{":
                    bend = _match_forward(toks, k, "{", "}")
                    body = toks[k + 1:bend - 1]
                    idx = counter[0]
                    counter[0] += 1
                    qn = f"{owner_qname}::$lambda{idx}"
                    body = _lift_lambdas(body, owner_qname, owner_cls,
                                         owner_locals, sink, counter)
                    sink.append((qn, param_toks, body, line))
                    out.append((f"__GLOBE_LAMBDA__{qn}__", line))
                    i = bend
                    continue
        out.append(toks[i])
        i += 1
    return out


_LAMBDA_PH = re.compile(r"^__GLOBE_LAMBDA__(.+)__$")


# ---- statement/event extraction ------------------------------------------

def _guard_decl(seg):
    """Matches `[util::]GuardType var(lockexpr);` -> (kind, var, chain, line)
    or None."""
    idents = [(i, tk[0]) for i, tk in enumerate(seg)
              if re.match(r"[A-Za-z_]", tk[0])]
    for i, name in idents:
        if name in GUARD_KINDS:
            # must be the type position: next ident is the variable
            j = i + 1
            if j < len(seg) and seg[j][0] == "<":   # UniqueLock<...>? no
                j = _match_forward(seg, j, "<", ">")
            if j < len(seg) and re.match(r"[A-Za-z_]", seg[j][0]) \
                    and seg[j][0] not in _KEYWORDS:
                var = seg[j][0]
                k = j + 1
                if k < len(seg) and seg[k][0] in ("(", "{"):
                    close_t = ")" if seg[k][0] == "(" else "}"
                    end = _match_forward(seg, k, seg[k][0], close_t)
                    inner = seg[k + 1:end - 1]
                    parts = _split_top(inner)
                    chain = _chain_of(parts[0]) if parts else ()
                    return (GUARD_KINDS[name], var, chain, seg[i][1])
        break_names = ("return", "if", "while", "for")
        if name in break_names:
            break
    return None


def _stmt_events(seg, scopes, events, local_types):
    """Appends events for one statement's tokens.  `scopes` is the full
    stack of guard-variable scopes (innermost last)."""
    if not seg:
        return
    while seg and seg[0][0] in ("else", "do", "try"):
        seg = seg[1:]
    if not seg:
        return
    head = seg[0][0]
    if head in ("case", "default", "goto", "using", "public", "private",
                "protected", "break", "continue"):
        return
    gd = _guard_decl(seg)
    if gd is not None:
        kind, var, chain, line = gd
        events.append(Ev("acq", line=line, var=var, lock=chain, guard=kind))
        scopes[-1].append(var)
        return
    # local declarations worth typing: `Type name(...)` / `Type name = ...`
    refs, calls = _parse_expr(seg)
    # remember `Foo x` declarations for receiver typing (cheap heuristic:
    # two leading idents, first uppercase-ish type name)
    lead = [tk[0] for tk in seg[:6] if re.match(r"[A-Za-z_]", tk[0])
            and tk[0] not in _KEYWORDS and tk[0] not in _NOISE_IDENTS]
    # the type may be namespace-qualified (`rpc::RpcClient replica(...)`):
    # take the first uppercase-ish token as the type, the next as the name
    for li in range(min(2, max(0, len(lead) - 1))):
        if lead[li][:1].isupper():
            local_types.setdefault(lead[li + 1], lead[li])
            break
    for cs in calls:
        ph = _LAMBDA_PH.match(cs.name or "")
        if ph and len(cs.chain) == 1:
            cs.lambda_target = ph.group(1)
            events.append(Ev("call", line=cs.line, cs=cs))
            continue
        # collect lambda placeholders passed as arguments
        for r in list(cs.arg_refs):
            m = _LAMBDA_PH.match(r)
            if m:
                cs.lambdas.append(m.group(1))
        if cs.name == "wait" and cs.arg_refs:
            gv = cs.arg_refs[0]
            if any(gv in sc for sc in scopes):
                events.append(Ev("wait", line=cs.line, var=gv))
                continue
        if cs.name in ("lock", "unlock") and cs.recv_path and cs.nargs == 0:
            kind = "mlock" if cs.name == "lock" else "munlock"
            events.append(Ev(kind, line=cs.line, lock=tuple(
                x for x in cs.recv_path
                if x not in ("util", "globe", "std"))))
            continue
        if cs.name == "try_lock":
            continue
        events.append(Ev("call", line=cs.line, cs=cs))


def _build_body(toks, local_types):
    """Linearizes a body into events with scope-accurate guard release:
    a guard declared in a block emits an explicit 'rel' at that block's
    closing brace, which stays correct under early returns (the next
    acquisition in the outer scope sees the right held-set)."""
    events = []
    scopes = [[]]          # stack of [guard vars declared in this scope]
    seg = []
    i, n = 0, len(toks)
    pdepth = 0

    while i < n:
        t, line = toks[i]
        if t == "(":
            pdepth += 1
            seg.append(toks[i])
        elif t == ")":
            pdepth -= 1
            seg.append(toks[i])
        elif t == ";" and pdepth == 0:
            _stmt_events(seg, scopes, events, local_types)
            seg = []
        elif t == "{" and pdepth == 0:
            heads = [tk[0] for tk in seg]
            if not seg or heads[0] in _CONTROL:
                _stmt_events(seg, scopes, events, local_types)
                seg = []
                scopes.append([])
            else:
                # init-list brace: swallow into current statement
                end = _match_forward(toks, i, "{", "}")
                seg.extend(toks[i + 1:end - 1])
                i = end
                continue
        elif t == "}" and pdepth == 0:
            _stmt_events(seg, scopes, events, local_types)
            seg = []
            released = scopes.pop() if len(scopes) > 1 else []
            if not scopes:
                scopes = [[]]
            for var in reversed(released):
                events.append(Ev("rel", line=line, var=var))
        else:
            seg.append(toks[i])
        i += 1
    _stmt_events(seg, scopes, events, local_types)
    # function exit: release anything still registered (top scope)
    for var in reversed(scopes[0]):
        events.append(Ev("rel", line=0, var=var))
    return events


def _parse_params_lite(ptoks):
    """Parameter list tokens -> ([name], {name: type_basename})."""
    names, types = [], {}
    for part in _split_top(ptoks):
        idents = [tk[0] for tk in part if re.match(r"[A-Za-z_]", tk[0])
                  and tk[0] not in ("const", "struct", "typename", "volatile",
                                    "util", "globe", "std")
                  and tk[0] not in _NOISE_IDENTS]
        if not idents:
            continue
        if len(idents) >= 2:
            names.append(idents[-1])
            types[idents[-1]] = idents[-2]
        else:
            names.append(idents[-1])
    return names, types


def parse_file_lite(path: str, prog: Program):
    text = _strip_comments(open(path, encoding="utf-8",
                                errors="replace").read())
    relpath = os.path.relpath(path, REPO)
    toks = _tokenize(text)
    scopes = []
    pending = []
    i, n = 0, len(toks)

    def qname(parts):
        names = [s[1] for s in scopes if s[0] in ("ns", "class") and s[1]]
        return "::".join(names + parts)

    def cur_class():
        for s in reversed(scopes):
            if s[0] == "class":
                return s[1]
        return None

    def add_lambda_funcs(lifted, owner_cls):
        for qn, ptoks, btoks, lline in lifted:
            lf = Func(qname=qn, file=relpath, line=lline, cls=owner_cls)
            names, types = _parse_params_lite(ptoks)
            lf.params = names
            lf.local_types.update(types)
            lf.events = _build_body(btoks, lf.local_types)
            lf.has_body = True
            prog.add(lf)

    while i < n:
        t, line = toks[i]
        if t == "namespace":
            j = i + 1
            names = []
            while j < n and toks[j][0] not in ("{", ";", "="):
                if re.match(r"[A-Za-z_]", toks[j][0]):
                    names.append(toks[j][0])
                j += 1
            if j < n and toks[j][0] == "{":
                scopes.append(("ns", "::".join(names)))
            i = j + 1
            pending = []
            continue
        if t in ("class", "struct") and not (pending and pending[-1][0] == "enum"):
            j = i + 1
            name = None
            while j < n and toks[j][0] not in ("{", ";"):
                if re.match(r"[A-Za-z_]", toks[j][0]) and name is None \
                        and toks[j][0] not in _NOISE_IDENTS:
                    name = toks[j][0]
                if toks[j][0] == "(":
                    break
                j += 1
            if j < n and toks[j][0] == "{" and name:
                scopes.append(("class", name))
                i = j + 1
                pending = []
                continue
            pending.append(toks[i])
            i += 1
            continue
        if t == "template":
            if i + 1 < n and toks[i + 1][0] == "<":
                d = 0
                j = i + 1
                while j < n:
                    if toks[j][0] == "<":
                        d += 1
                    elif toks[j][0] == ">":
                        d -= 1
                        if d == 0:
                            break
                    j += 1
                i = j + 1
                continue
        if t == "{":
            i = _match_forward(toks, i, "{", "}")
            pending = []
            continue
        if t == "}":
            if scopes:
                scopes.pop()
            if i + 1 < n and toks[i + 1][0] == ";":
                i += 1
            i += 1
            pending = []
            continue
        if t == ";":
            pending = []
            i += 1
            continue
        if t == "(" and pending:
            name_parts = []
            j = len(pending) - 1
            if re.match(r"[A-Za-z_]", pending[j][0]) \
                    and pending[j][0] not in _KEYWORDS - {"operator"}:
                name_parts.append(pending[j][0])
                j -= 1
                while j >= 1 and pending[j][0] == "::" \
                        and re.match(r"[A-Za-z_]", pending[j - 1][0]):
                    name_parts.append(pending[j - 1][0])
                    j -= 2
            name_parts.reverse()
            is_dtor = j >= 0 and pending[j][0] == "~"
            is_op = "operator" in [p[0] for p in pending[max(0, j - 1):]]
            if not name_parts or is_op or name_parts[-1] in _NOISE_IDENTS:
                i = _match_forward(toks, i, "(", ")")
                continue
            close = _match_forward(toks, i, "(", ")")
            ptoks = toks[i + 1:close - 1]
            # qualifier zone: find ';' (decl) or '{' (def); harvest
            # GLOBE_REQUIRES arguments along the way.
            k = close
            kind = None
            requires = set()
            while k < n:
                q = toks[k][0]
                if q == ";":
                    kind = "decl"
                    break
                if q == "{":
                    kind = "def"
                    break
                if q == "=":
                    kind = "decl"
                    while k < n and toks[k][0] != ";":
                        k += 1
                    break
                if q == ":":
                    k += 1
                    while k < n:
                        qq = toks[k][0]
                        if qq == "(":
                            k = _match_forward(toks, k, "(", ")")
                            continue
                        if qq == "{":
                            if toks[k - 1][0] in (")", "}"):
                                break
                            k = _match_forward(toks, k, "{", "}")
                            continue
                        if qq == ";":
                            break
                        k += 1
                    kind = "def" if k < n and toks[k][0] == "{" else "decl"
                    break
                if q in _QUAL_MACROS and k + 1 < n and toks[k + 1][0] == "(":
                    mend = _match_forward(toks, k + 1, "(", ")")
                    if q == "GLOBE_REQUIRES":
                        for part in _split_top(toks[k + 2:mend - 1]):
                            ch = _chain_of(part)
                            if ch:
                                requires.add(ch)
                    k = mend
                    continue
                if q == "(":
                    kind = "skip"
                    break
                k += 1
            if kind is None or is_dtor:
                kind = "skip"
            if kind == "skip":
                i = close
                continue
            f = Func(file=relpath, line=line)
            f.requires = requires
            ann_toks = [p[0] for p in pending] + \
                       [toks[m][0] for m in range(close, min(k, n))]
            if "GLOBE_BLOCKING" in ann_toks:
                f.annots.add(ANNOT_BLOCKING)
            names, types = _parse_params_lite(ptoks)
            f.params = names
            f.local_types.update(types)
            cls = cur_class()
            parts = name_parts[:]
            f.qname = qname(parts)
            f.cls = cls if cls else (parts[-2] if len(parts) >= 2 else None)
            if kind == "def":
                body_start = k
                body_end = _match_forward(toks, body_start, "{", "}")
                body = toks[body_start + 1:body_end - 1]
                lifted = []
                body = _lift_lambdas(body, f.qname, f.cls, f.local_types,
                                     lifted, [0])
                f.events = _build_body(body, f.local_types)
                f.has_body = True
                prog.add(f)
                add_lambda_funcs(lifted, f.cls)
                i = body_end
            else:
                prog.add(f)
                i = k + 1
            pending = []
            continue
        pending.append(toks[i])
        i += 1

    _harvest_fields(text, prog)
    _harvest_mutexes(text, relpath, prog)


_FIELD_RE = re.compile(
    r"^\s*(?:mutable\s+)?(?:const\s+)?([A-Za-z_][\w:]*(?:<[^;<>{}]*>)?)"
    r"[&*\s]+([A-Za-z_]\w*_?)\s*(?:GLOBE_(?:PT_)?GUARDED_BY\([^)]*\))?"
    r"\s*(?:=[^;]*|\{[^;]*\})?;",
    re.MULTILINE,
)
_CLASS_RE = re.compile(r"\b(?:class|struct)\s+(?:GLOBE_\w+(?:\([^)]*\))?\s+)?"
                       r"([A-Za-z_]\w*)[^;{()]*\{")


def _class_bodies(text):
    spans = []
    for cm in _CLASS_RE.finditer(text):
        cls = cm.group(1)
        depth = 0
        j = cm.end() - 1
        start = j
        while j < len(text):
            if text[j] == "{":
                depth += 1
            elif text[j] == "}":
                depth -= 1
                if depth == 0:
                    break
            j += 1
        spans.append((cls, start, j))
    for cls, start, end in spans:
        body = text[start:end]
        # Mask nested class/struct bodies so their members attribute to the
        # inner class only (SimNet's nested HostState must not re-register
        # HostState's lock under SimNet).
        for _c2, s2, e2 in spans:
            if start < s2 and e2 <= end:
                a, b = s2 - start, min(e2 - start, len(body))
                body = body[:a] + " " * (b - a) + body[b:]
        yield cls, body, start


def _harvest_fields(text: str, prog: Program):
    for cls, body, _off in _class_bodies(text):
        table = prog.fields.setdefault(cls, {})
        for fm in _FIELD_RE.finditer(body):
            raw = fm.group(1)
            ftype = raw.split("<")[0].split("::")[-1]
            # unwrap smart pointers / optional to the pointee type, so a
            # `std::unique_ptr<GlobeDocProxy> proxy_` receiver resolves.
            if ftype in ("unique_ptr", "shared_ptr", "optional") and "<" in raw:
                inner = raw.split("<", 1)[1].rsplit(">", 1)[0]
                ftype = inner.split("<")[0].split("::")[-1].strip("& *")
            if ftype in ("return", "using", "typedef"):
                continue
            table.setdefault(fm.group(2), ftype)


_MUTEX_FIELD_RE = re.compile(
    r"^\s*(?:mutable\s+)?(?:globe::)?(?:util::)?(Mutex|RecursiveMutex)\s+"
    r"([A-Za-z_]\w*)\s*(?:GLOBE_\w+(?:\([^)]*\))?\s*)*;",
    re.MULTILINE,
)
_MUTEX_PTR_RE = re.compile(
    r"^\s*(?:mutable\s+)?std::unique_ptr<\s*(?:globe::)?(?:util::)?"
    r"(Mutex|RecursiveMutex)\s*>\s+([A-Za-z_]\w*)\s*"
    r"(?:GLOBE_\w+(?:\([^)]*\))?\s*)*(?:=[^;]*|\{[^;]*\})?;",
    re.MULTILINE,
)


def _harvest_mutexes(text: str, relpath: str, prog: Program):
    subsys = subsys_of(relpath)
    for cls, body, off in _class_bodies(text):
        for rx, kindmap in ((_MUTEX_FIELD_RE, MUTEX_TYPES),
                            (_MUTEX_PTR_RE, MUTEX_TYPES)):
            for fm in rx.finditer(body):
                line = text.count("\n", 0, off + fm.start()) + 1
                prog.register_mutex(subsys, cls, fm.group(2),
                                    kindmap[fm.group(1)], relpath, line)


def collect_sources(root):
    out = []
    for base, _dirs, files in os.walk(root):
        for fn in sorted(files):
            if fn.endswith((".hpp", ".cpp", ".h", ".cc")):
                out.append(os.path.join(base, fn))
    return out


def build_program_lite(paths) -> Program:
    prog = Program()
    for p in paths:
        parse_file_lite(p, prog)
    return prog


# --------------------------------------------------------------------------
# libclang frontend
# --------------------------------------------------------------------------

_REQ_RE = re.compile(r"GLOBE_REQUIRES\(([^)]*)\)")
_file_cache: dict = {}


def _requires_at(abspath, line):
    """Raw-source scan for GLOBE_REQUIRES on the declaration at `line`.
    Uniform across frontends: the macro only expands under clang's
    thread-safety mode, so the attribute is not reliably in the AST."""
    try:
        if abspath not in _file_cache:
            _file_cache[abspath] = open(abspath, encoding="utf-8",
                                        errors="replace").read().splitlines()
        lines = _file_cache[abspath]
    except OSError:
        return set()
    snippet = "\n".join(lines[line - 1:line + 6])
    cut = len(snippet)
    for stop in ("{", ";"):
        p = snippet.find(stop)
        if 0 <= p < cut:
            cut = p
    out = set()
    for m in _REQ_RE.finditer(snippet[:cut + 1]):
        for arg in m.group(1).split(","):
            ch = tuple(x for x in re.findall(r"[A-Za-z_]\w*", arg)
                       if x not in ("this", "util", "globe", "std"))
            if ch:
                out.add(ch)
    return out


def _clang_walk_tu(tu, prog: Program, in_scope, ci):
    """Walks one TU, adding in-scope functions (with event IR) and fields."""

    def qualified(cursor):
        parts = []
        c = cursor
        while c is not None and c.kind != ci.CursorKind.TRANSLATION_UNIT:
            if c.spelling:
                parts.append(c.spelling)
            c = c.semantic_parent
        return "::".join(reversed(parts))

    def annots_of(cursor):
        out = set()
        for ch in cursor.get_children():
            if ch.kind == ci.CursorKind.ANNOTATE_ATTR:
                a = CLANG_ANNOTATION_OF.get(ch.spelling)
                if a:
                    out.add(a)
        return out

    def type_base(tspell):
        return tspell.split("<")[0].split("::")[-1].strip("& *")

    def unwrap(tspell):
        base = type_base(tspell)
        if base in ("unique_ptr", "shared_ptr", "optional") and "<" in tspell:
            inner = tspell.split("<", 1)[1].rsplit(">", 1)[0]
            return type_base(inner)
        return base

    def mutex_field(cursor):
        """referenced FIELD_DECL that is a util Mutex -> ('::', cls, member)
        or None."""
        ref = cursor.referenced
        if ref is None or ref.kind != ci.CursorKind.FIELD_DECL:
            return None
        if unwrap(ref.type.spelling) not in MUTEX_TYPES:
            return None
        owner = ref.semantic_parent.spelling if ref.semantic_parent else None
        if not owner:
            return None
        return ("::", owner, ref.spelling)

    def find_lock_ref(node):
        """First util-Mutex field reference in a subtree."""
        if node.kind in (ci.CursorKind.MEMBER_REF_EXPR,
                         ci.CursorKind.DECL_REF_EXPR):
            mf = mutex_field(node)
            if mf:
                return mf
        for ch in node.get_children():
            r = find_lock_ref(ch)
            if r:
                return r
        return None

    def collect_refs(node, refs):
        if node.kind in (ci.CursorKind.DECL_REF_EXPR,
                         ci.CursorKind.MEMBER_REF_EXPR):
            if node.spelling:
                refs.append(node.spelling)
        for ch in node.get_children():
            collect_refs(ch, refs)

    def find_lambdas(node, out):
        """LAMBDA_EXPR cursors not nested inside a further CALL_EXPR."""
        if node.kind == ci.CursorKind.LAMBDA_EXPR:
            out.append(node)
            return
        if node.kind == ci.CursorKind.CALL_EXPR:
            return
        for ch in node.get_children():
            find_lambdas(ch, out)

    def make_func_ctx(owner_qname, owner_cls, relfile):
        return {"qname": owner_qname, "cls": owner_cls, "file": relfile,
                "lcount": 0}

    def lift_lambda(node, fctx):
        idx = fctx["lcount"]
        fctx["lcount"] += 1
        qn = f"{fctx['qname']}::$lambda{idx}"
        if qn in prog.funcs and prog.funcs[qn].has_body:
            return qn
        lf = Func(qname=qn, file=fctx["file"], line=node.location.line,
                  cls=fctx["cls"])
        body = None
        for ch in node.get_children():
            if ch.kind == ci.CursorKind.COMPOUND_STMT:
                body = ch
            elif ch.kind == ci.CursorKind.PARM_DECL:
                lf.params.append(ch.spelling)
                bt = unwrap(ch.type.spelling)
                if ch.spelling and bt:
                    lf.local_types[ch.spelling] = bt
        sub = make_func_ctx(qn, fctx["cls"], fctx["file"])
        if body is not None:
            lf.has_body = True
            walk(body, lf.events, [[]], lf.local_types, sub)
        prog.add(lf)
        return qn

    def handle_call(node, events, scopes, local_types, fctx):
        ref = node.referenced
        name = (ref.spelling if ref is not None and ref.spelling
                else node.spelling) or ""
        args = list(node.get_arguments())
        children = list(node.get_children())
        cs = CallSite(line=node.location.line)
        # receiver path (member calls put the base expr first)
        base_refs = []
        if children and (not args or not children[0] == args[0]):
            collect_refs(children[0], base_refs)
        if ref is not None and ref.spelling:
            cs.chain = qualified(ref).split("::")
            cs.explicit = True
        else:
            cs.chain = [name or "?"]
        if base_refs:
            cs.recv = base_refs[0]
            cs.recv_path = base_refs
        cs.nargs = len(args)
        # IIFE: the callee expression itself is a lambda
        if children and (not args or not children[0] == args[0]):
            callee_lams = []
            find_lambdas(children[0], callee_lams)
            if callee_lams and name in ("operator()", ""):
                cs.lambda_target = lift_lambda(callee_lams[0], fctx)
        for a in args:
            lams = []
            find_lambdas(a, lams)
            for lam in lams:
                cs.lambdas.append(lift_lambda(lam, fctx))
            arefs = []
            collect_refs(a, arefs)
            cs.arg_refs.extend(arefs)
            walk(a, events, scopes, local_types, fctx)  # nested calls first
        if cs.lambda_target:
            events.append(Ev("call", line=cs.line, cs=cs))
            return
        # std::function invocation: `listener_(...)` presents as a call to
        # function<...>::operator() — normalize to an indirect call through
        # the receiver field so callback binding can resolve it.
        if name == "operator()" and base_refs:
            cs.chain = [base_refs[-1]]
            cs.explicit = False
            cs.recv = None
            cs.recv_path = []
            events.append(Ev("call", line=cs.line, cs=cs))
            return
        if name == "wait" and args:
            wrefs = []
            collect_refs(args[0], wrefs)
            if wrefs and any(wrefs[0] in sc for sc in scopes):
                events.append(Ev("wait", line=node.location.line,
                                 var=wrefs[0]))
                return
        if name in ("lock", "unlock", "try_lock") and children:
            mf = find_lock_ref(children[0]) if children else None
            if mf:
                if name == "try_lock":
                    return
                events.append(Ev("mlock" if name == "lock" else "munlock",
                                 line=node.location.line, lock=mf))
                return
        events.append(Ev("call", line=cs.line, cs=cs))

    def walk(node, events, scopes, local_types, fctx):
        k = node.kind
        if k == ci.CursorKind.COMPOUND_STMT:
            scopes.append([])
            for ch in node.get_children():
                walk(ch, events, scopes, local_types, fctx)
            released = scopes.pop()
            for var in reversed(released):
                events.append(Ev("rel", line=node.extent.end.line, var=var))
            return
        if k == ci.CursorKind.LAMBDA_EXPR:
            lift_lambda(node, fctx)
            return
        if k == ci.CursorKind.CALL_EXPR:
            handle_call(node, events, scopes, local_types, fctx)
            return
        if k == ci.CursorKind.DECL_STMT:
            for ch in node.get_children():
                if ch.kind != ci.CursorKind.VAR_DECL:
                    continue
                base = type_base(ch.type.spelling)
                if base in GUARD_KINDS:
                    lockref = find_lock_ref(ch)
                    if lockref is None:
                        refs = []
                        collect_refs(ch, refs)
                        lockref = tuple(r for r in refs if r != ch.spelling)
                    events.append(Ev("acq", line=ch.location.line,
                                     var=ch.spelling, lock=lockref,
                                     guard=GUARD_KINDS[base]))
                    scopes[-1].append(ch.spelling)
                    continue
                if ch.spelling and base:
                    local_types[ch.spelling] = unwrap(ch.type.spelling)
                for sub in ch.get_children():
                    walk(sub, events, scopes, local_types, fctx)
            return
        for ch in node.get_children():
            walk(ch, events, scopes, local_types, fctx)

    for cur in tu.cursor.walk_preorder():
        if cur.kind == ci.CursorKind.FIELD_DECL:
            floc = cur.location.file.name if cur.location.file else None
            if not in_scope(floc):
                continue
            cls = cur.semantic_parent.spelling
            t = cur.type.spelling
            base = unwrap(t)
            if cls and base:
                prog.fields.setdefault(cls, {}).setdefault(cur.spelling, base)
            if base in MUTEX_TYPES and ("util::" in t or "<" not in t):
                rel = os.path.relpath(floc, REPO)
                prog.register_mutex(subsys_of(rel), cls, cur.spelling,
                                    MUTEX_TYPES[base], rel,
                                    cur.location.line)
            continue
        if cur.kind not in (ci.CursorKind.FUNCTION_DECL,
                            ci.CursorKind.CXX_METHOD,
                            ci.CursorKind.CONSTRUCTOR,
                            ci.CursorKind.FUNCTION_TEMPLATE):
            continue
        floc = cur.location.file.name if cur.location.file else None
        if not in_scope(floc):
            continue
        qn = qualified(cur)
        rel = os.path.relpath(floc, REPO)
        f = Func(qname=qn, file=rel, line=cur.location.line)
        f.annots = annots_of(cur)
        f.requires = _requires_at(floc, cur.location.line)
        sp = cur.semantic_parent
        if sp is not None and sp.kind in (ci.CursorKind.CLASS_DECL,
                                          ci.CursorKind.STRUCT_DECL,
                                          ci.CursorKind.CLASS_TEMPLATE):
            f.cls = sp.spelling
        for pc in cur.get_arguments():
            if pc.spelling:
                f.params.append(pc.spelling)
                bt = unwrap(pc.type.spelling)
                if bt:
                    f.local_types[pc.spelling] = bt
        body = None
        for ch in cur.get_children():
            if ch.kind == ci.CursorKind.COMPOUND_STMT:
                body = ch
        prev = prog.funcs.get(qn)
        if body is not None and not (prev is not None and prev.has_body):
            f.has_body = True
            fctx = make_func_ctx(qn, f.cls, rel)
            walk(body, f.events, [[]], f.local_types, fctx)
        prog.add(f)


def build_program_clang(paths, compile_commands_dir) -> Program:
    import clang.cindex as ci  # noqa: imported lazily; CI installs libclang

    prog = Program()
    index = ci.Index.create()
    try:
        cdb = ci.CompilationDatabase.fromDirectory(compile_commands_dir)
    except ci.CompilationDatabaseError:
        raise RuntimeError(
            f"no compile_commands.json under {compile_commands_dir} "
            "(configure with -DCMAKE_EXPORT_COMPILE_COMMANDS=ON)")

    wanted = {os.path.abspath(p) for p in paths}
    wanted_dirs = {p for p in wanted if os.path.isdir(p)}

    def in_scope(fname):
        if not fname:
            return False
        f = os.path.abspath(fname)
        return f in wanted or any(f.startswith(d + os.sep)
                                  for d in wanted_dirs)

    seen_tus = set()
    for cmd in cdb.getAllCompileCommands():
        src = os.path.join(cmd.directory, cmd.filename) \
            if not os.path.isabs(cmd.filename) else cmd.filename
        src = os.path.normpath(src)
        if src in seen_tus:
            continue
        seen_tus.add(src)
        cargs = [a for a in list(cmd.arguments)[1:]
                 if a not in ("-c", "-o", cmd.filename)
                 and not a.endswith(".o")]
        try:
            tu = index.parse(src, args=cargs)
        except ci.TranslationUnitLoadError:
            continue
        _clang_walk_tu(tu, prog, in_scope, ci)
    return prog


def build_program_clang_single(path, include_dirs) -> Program:
    """Parses one standalone TU (fixture self-test mode)."""
    import clang.cindex as ci

    prog = Program()
    index = ci.Index.create()
    args = ["-std=c++20", "-x", "c++"]
    for d in include_dirs:
        args += ["-I", d]
    tu = index.parse(path, args=args)
    target = os.path.abspath(path)

    def in_scope(fname):
        return fname and os.path.abspath(fname) == target

    _clang_walk_tu(tu, prog, in_scope, ci)
    # mutex registry + field fallback come from the same raw scan the lite
    # frontend uses, so lock ids agree between frontends.
    text = _strip_comments(open(path, encoding="utf-8",
                                errors="replace").read())
    rel = os.path.relpath(path, REPO)
    _harvest_mutexes(text, rel, prog)
    _harvest_fields(text, prog)
    return prog


# --------------------------------------------------------------------------
# Analysis core
# --------------------------------------------------------------------------

@dataclass
class CSummary:
    acquires: dict = field(default_factory=dict)  # lockid -> (file,line,chain)
    blocks: dict = field(default_factory=dict)    # sinkdesc -> (file,line,chain)


@dataclass
class Finding:
    kind: str          # order | unranked | block | deadlock | cycle
    key: str
    file: str = ""
    line: int = 0
    detail: list = field(default_factory=list)


class Analyzer:
    def __init__(self, prog: Program, hier: dict, verbose=False):
        self.prog = prog
        self.hier = hier
        self.verbose = verbose
        self.sum: dict[str, CSummary] = {}
        self.findings: list[Finding] = []
        self.edges: dict = {}   # (H, L) -> (func, file, line, chain)
        for q, f in prog.funcs.items():
            s = CSummary()
            if ANNOT_BLOCKING in f.annots:
                s.blocks[q] = (f.file, f.line, ())
            self.sum[q] = s
        self.bound: dict[str, list] = {}   # class -> [lambda qnames]
        self._bind_callbacks()

    # -- callback binding --------------------------------------------------

    def _bind_callbacks(self):
        """A lambda passed to a method of class T is considered invocable by
        any of T's methods through a callable field or parameter — this is
        how `listener_(key, why)` inside ElementCache reaches the lambda the
        cache tier registered on it."""
        for f in self.prog.funcs.values():
            for ev in f.events:
                if ev.kind != "call" or ev.cs is None or not ev.cs.lambdas:
                    continue
                t = self.resolve_one(ev.cs, f)
                if t is not None and t.cls:
                    lst = self.bound.setdefault(t.cls, [])
                    for qn in ev.cs.lambdas:
                        if qn not in lst:
                            lst.append(qn)

    # -- resolution --------------------------------------------------------

    def resolve_one(self, cs: CallSite, f: Func):
        if cs.lambda_target:
            return self.prog.funcs.get(cs.lambda_target)
        name = cs.name
        cands = self.prog.by_name.get(name, [])
        if cs.explicit and len(cs.chain) >= 2:
            suffix = "::".join(cs.chain)
            matches = [q for q in cands
                       if q == suffix or q.endswith("::" + suffix)
                       or suffix.endswith("::" + q)]
            if matches:
                return self.prog.funcs[matches[0]]
        if cs.recv is not None:
            rtype = self._recv_type(cs, f)
            if rtype:
                matches = [q for q in cands
                           if q.endswith(f"::{rtype}::{name}")
                           or q == f"{rtype}::{name}"]
                if matches:
                    return self.prog.funcs[matches[0]]
                return None   # typed receiver, method not in index: external
            if name in STD_CONTAINER_METHODS:
                return None
        cands = [q for q in cands if self._viable(cs, q)]
        if len(cands) == 1:
            return self.prog.funcs[cands[0]]
        if len(cands) > 1:
            def sig(q):
                s = self.sum[q]
                return (ANNOT_BLOCKING in self.prog.funcs[q].annots,
                        tuple(sorted(s.acquires)), tuple(sorted(s.blocks)))
            if all(sig(q) == sig(cands[0]) for q in cands[1:]):
                return self.prog.funcs[cands[0]]
        return None

    def resolve_targets(self, cs: CallSite, f: Func) -> list:
        t = self.resolve_one(cs, f)
        if t is not None:
            return [t]
        # Indirect call through a callable field / parameter: the bound
        # lambdas of the enclosing class are the candidate targets.
        if len(cs.chain) == 1 and f.cls:
            name = cs.name
            is_field = name in self.prog.fields.get(f.cls, {})
            is_param = name in f.params
            is_fn_local = f.local_types.get(name) == "function"
            if is_field or is_param or is_fn_local:
                return [self.prog.funcs[q]
                        for q in self.bound.get(f.cls, [])
                        if q in self.prog.funcs]
        return []

    def _viable(self, cs: CallSite, q: str) -> bool:
        cand = self.prog.funcs[q]
        if cs.recv is not None and cand.cls is None:
            return False
        return True

    def _recv_type(self, cs: CallSite, f: Func):
        if not cs.recv_path:
            return None
        t = f.local_types.get(cs.recv_path[0])
        if t is None and f.cls:
            t = self.prog.fields.get(f.cls, {}).get(cs.recv_path[0])
        for fieldname in cs.recv_path[1:]:
            if t is None:
                return None
            t = self.prog.fields.get(t, {}).get(fieldname)
        return t

    def resolve_lock(self, lockref, f: Func):
        """Lock expression -> lockid or None."""
        if not lockref:
            return None
        if lockref[0] == "::":
            _, cls, member = lockref
            lid = self.prog.lock_by_cls(cls, member)
            if lid:
                return lid
            owners = self.prog.member_owner.get(member, [])
            return owners[0] if len(owners) == 1 else None
        chain = tuple(lockref)
        member = chain[-1]
        if len(chain) == 1:
            if f.cls:
                lid = self.prog.lock_by_cls(f.cls, member)
                if lid:
                    return lid
        else:
            t = f.local_types.get(chain[0])
            if t is None and f.cls:
                t = self.prog.fields.get(f.cls, {}).get(chain[0])
            for mid in chain[1:-1]:
                if t is None:
                    break
                t = self.prog.fields.get(t, {}).get(mid)
            if t:
                lid = self.prog.lock_by_cls(t, member)
                if lid:
                    return lid
        owners = self.prog.member_owner.get(member, [])
        return owners[0] if len(owners) == 1 else None

    # -- fixpoint ----------------------------------------------------------

    def run(self):
        changed = True
        guard = 0
        while changed and guard < 60:
            changed = False
            guard += 1
            self.findings = []
            self.edges = {}
            for q, f in self.prog.funcs.items():
                if not f.has_body:
                    continue
                if self._analyze_function(f):
                    changed = True
        self._find_cycles()
        self._dedupe()

    def _dedupe(self):
        seen = set()
        uniq = []
        for fd in self.findings:
            if fd.key not in seen:
                seen.add(fd.key)
                uniq.append(fd)
        self.findings = uniq

    def _is_recursive(self, lid, guard_kind=""):
        if guard_kind == "guard_rec":
            return True
        info = self.prog.mutexes.get(lid)
        return bool(info and info["kind"] == "recursive")

    def _check_edge(self, H, L, f, line, hinfo, via):
        self.edges.setdefault((H, L), (f.qname, f.file, line, via))
        rH, rL = self.hier.get(H), self.hier.get(L)
        via_lines = [f"    {fn} at {fl}:{ln}" for fn, fl, ln in via[:MAX_CHAIN]]
        if rH is None or rL is None:
            missing = [x for x, r in ((H, rH), (L, rL)) if r is None]
            self.findings.append(Finding(
                kind="unranked",
                key=f"{f.qname} | unranked {H} -> {L}",
                file=f.file, line=line,
                detail=[f"  acquires {L} while holding {H} "
                        f"(held since {f.file}:{hinfo[0]})",
                        f"  unranked mutex(es): {', '.join(missing)} — add "
                        "to tools/lock_hierarchy.txt"] + via_lines))
        elif rH >= rL:
            self.findings.append(Finding(
                kind="order",
                key=f"{f.qname} | order {H} -> {L}",
                file=f.file, line=line,
                detail=[f"  acquires {L} (rank {rL}) while holding {H} "
                        f"(rank {rH}, held since {f.file}:{hinfo[0]})",
                        "  declared order requires "
                        f"{L if rL < rH else H} to be acquired first"]
                + via_lines))

    def _block_finding(self, H, f, line, hinfo, descs):
        rep = min(descs)
        chain = descs[rep]
        more = len(descs) - 1
        detail = [f"  blocking call: {rep}"
                  + (f" (+{more} more reachable sink(s))" if more else ""),
                  f"  while holding {H} (held since {f.file}:{hinfo[0]})"]
        detail += [f"    via {fn} at {fl}:{ln}"
                   for fn, fl, ln in chain[:MAX_CHAIN]]
        self.findings.append(Finding(
            kind="block", key=f"{f.qname} | block {H}",
            file=f.file, line=line, detail=detail))

    def _analyze_function(self, f: Func) -> bool:
        s = self.sum[f.qname]
        grew = False
        held: dict = {}     # lid -> [ (line, seeded) ] stack
        guards: dict = {}   # guard var -> lid (or None)

        for ch in f.requires:
            lid = self.resolve_lock(ch, f)
            if lid is not None:
                held.setdefault(lid, []).append((f.line, True))

        def held_items():
            return [(H, stack[0]) for H, stack in held.items() if stack]

        def do_acquire(lid, line, guard_kind, var):
            nonlocal grew
            if lid is None:
                if var is not None:
                    guards[var] = None
                return
            if held.get(lid) and not self._is_recursive(lid, guard_kind):
                self.findings.append(Finding(
                    kind="deadlock", key=f"{f.qname} | deadlock {lid}",
                    file=f.file, line=line,
                    detail=[f"  re-acquires non-recursive {lid} already "
                            f"held (since {f.file}:{held[lid][0][0]})"]))
            else:
                for H, hinfo in held_items():
                    if H != lid:
                        self._check_edge(H, lid, f, line, hinfo, ())
            held.setdefault(lid, []).append((line, False))
            if var is not None:
                guards[var] = lid
            if lid not in s.acquires:
                s.acquires[lid] = (f.file, line, ())
                grew = True

        def do_release(lid):
            stack = held.get(lid)
            if stack:
                stack.pop()

        def export_block(desc, line, chain):
            nonlocal grew
            if desc not in s.blocks and len(chain) <= MAX_CHAIN:
                s.blocks[desc] = (f.file, line, chain)
                grew = True

        for ev in f.events:
            if ev.kind == "acq":
                do_acquire(self.resolve_lock(ev.lock, f), ev.line,
                           ev.guard, ev.var)
            elif ev.kind == "rel":
                lid = guards.pop(ev.var, None)
                if lid is not None:
                    do_release(lid)
            elif ev.kind == "mlock":
                do_acquire(self.resolve_lock(ev.lock, f), ev.line, "manual",
                           None)
            elif ev.kind == "munlock":
                lid = self.resolve_lock(ev.lock, f)
                if lid is not None:
                    do_release(lid)
            elif ev.kind == "wait":
                own = guards.get(ev.var)
                desc = "util::CondVar::wait"
                export_block(desc, ev.line, ())
                for H, hinfo in held_items():
                    if H != own:   # waiting releases only its OWN lock
                        self._block_finding(H, f, ev.line, hinfo,
                                            {desc: ()})
            elif ev.kind == "call":
                cs = ev.cs
                if cs.name in SLEEP_FNS:
                    desc = f"sleep ({cs.name})"
                    export_block(desc, ev.line, ())
                    for H, hinfo in held_items():
                        self._block_finding(H, f, ev.line, hinfo, {desc: ()})
                    continue
                for t in self.resolve_targets(cs, f):
                    ts = self.sum[t.qname]
                    hop = (t.qname, t.file, t.line)
                    bdescs = {}
                    if ANNOT_BLOCKING in t.annots:
                        bdescs[t.qname] = (hop,)
                    for d, (_df, dl, dchain) in ts.blocks.items():
                        if d != t.qname and len(dchain) < MAX_CHAIN:
                            bdescs.setdefault(d, (hop,) + dchain)
                    for d, chain in bdescs.items():
                        export_block(d, ev.line, chain)
                    if bdescs:
                        for H, hinfo in held_items():
                            self._block_finding(H, f, ev.line, hinfo, bdescs)
                    for L, (_lf, _ll, lchain) in ts.acquires.items():
                        via = ((hop,) + lchain)[:MAX_CHAIN]
                        if held.get(L) and not self._is_recursive(L):
                            self.findings.append(Finding(
                                kind="deadlock",
                                key=f"{f.qname} | deadlock {L}",
                                file=f.file, line=ev.line,
                                detail=[f"  calls {t.qname}, which acquires "
                                        f"{L} already held (since "
                                        f"{f.file}:{held[L][0][0]})"]
                                + [f"    via {fn} at {fl}:{ln}"
                                   for fn, fl, ln in via]))
                        else:
                            for H, hinfo in held_items():
                                if H != L:
                                    self._check_edge(H, L, f, ev.line,
                                                     hinfo, via)
                        if L not in s.acquires and len(lchain) < MAX_CHAIN:
                            s.acquires[L] = (f.file, ev.line, via)
                            grew = True
        return grew

    def _find_cycles(self):
        adj: dict = {}
        for (H, L) in self.edges:
            adj.setdefault(H, []).append(L)
        color: dict = {}
        stack: list = []
        cycles = set()

        def dfs(u):
            color[u] = 1
            stack.append(u)
            for v in sorted(adj.get(u, [])):
                if color.get(v, 0) == 0:
                    dfs(v)
                elif color.get(v) == 1:
                    cyc = stack[stack.index(v):]
                    k = cyc.index(min(cyc))
                    cycles.add(tuple(cyc[k:] + cyc[:k]))
            stack.pop()
            color[u] = 2

        for u in sorted(adj):
            if color.get(u, 0) == 0:
                dfs(u)
        for cyc in sorted(cycles):
            path = " -> ".join(cyc + (cyc[0],))
            detail = []
            for a, b in zip(cyc, cyc[1:] + (cyc[0],)):
                fn, fl, ln, _via = self.edges[(a, b)]
                detail.append(f"  {a} -> {b}: {fn} at {fl}:{ln}")
            self.findings.append(Finding(
                kind="cycle", key=f"lock-graph | cycle {path}",
                detail=detail))


# --------------------------------------------------------------------------
# Hierarchy, baseline, reporting
# --------------------------------------------------------------------------

def load_hierarchy(path):
    """Lines: `<rank> <lockid>  [# comment]`.  Lower rank = outer lock."""
    ranks = {}
    if not os.path.exists(path):
        return ranks
    for lineno, raw in enumerate(open(path, encoding="utf-8"), 1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        parts = line.split()
        if len(parts) != 2:
            raise SystemExit(f"{path}:{lineno}: expected `<rank> <lockid>`, "
                             f"got: {raw.strip()}")
        try:
            rank = int(parts[0])
        except ValueError:
            raise SystemExit(f"{path}:{lineno}: rank must be an integer")
        if parts[1] in ranks:
            raise SystemExit(f"{path}:{lineno}: duplicate lock id {parts[1]}")
        ranks[parts[1]] = rank
    return ranks


def load_baseline(path):
    """Lines: `<finding key>  # justification` (justification required)."""
    entries = {}
    if not os.path.exists(path):
        return entries
    for lineno, raw in enumerate(open(path, encoding="utf-8"), 1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        if "#" not in line:
            raise SystemExit(
                f"{path}:{lineno}: baseline entry lacks a justification "
                "comment — every suppression must say why")
        key = line.split("#", 1)[0].strip()
        entries[key] = {"line": lineno, "used": False}
    return entries


_HEADLINE = {
    "order":    "CONC: lock acquisition violates the declared hierarchy",
    "unranked": "CONC: lock acquisition edge touches an unranked mutex",
    "block":    "CONC: blocking call reachable while a lock is held",
    "deadlock": "CONC: self-deadlock on a non-recursive mutex",
    "cycle":    "CONC: cycle in the lock-acquisition graph",
}


def render(fd: Finding) -> str:
    lines = [_HEADLINE.get(fd.kind, "CONC: finding")]
    if fd.file:
        lines.append(f"  at {fd.file}:{fd.line}")
    lines.extend(fd.detail)
    lines.append(f"  suppression key: {fd.key}")
    return "\n".join(lines)


# --------------------------------------------------------------------------
# Drivers
# --------------------------------------------------------------------------

def build_program(paths, frontend, cc_dir):
    if frontend in ("clang", "auto"):
        try:
            return build_program_clang(paths, cc_dir), "clang"
        except ImportError:
            if frontend == "clang":
                raise SystemExit(
                    "frontend 'clang' requested but python libclang is not "
                    "importable (pip install libclang); use --frontend lite")
            print("[conc] libclang unavailable; using lite frontend",
                  file=sys.stderr)
        except RuntimeError as e:
            if frontend == "clang":
                raise SystemExit(f"clang frontend failed: {e}")
            print(f"[conc] clang frontend failed ({e}); using lite frontend",
                  file=sys.stderr)
    files = []
    for p in paths:
        if os.path.isdir(p):
            files.extend(collect_sources(p))
        else:
            files.append(p)
    return build_program_lite(files), "lite"


def analyze(paths, frontend, cc_dir, hier, verbose=False):
    prog, used = build_program(paths, frontend, cc_dir)
    an = Analyzer(prog, hier, verbose=verbose)
    an.run()
    return an, used


def _stats_line(an: Analyzer, used, new, suppressed):
    n_block = sum(1 for q, s in an.sum.items() if s.blocks)
    ranked = sum(1 for lid in an.prog.mutexes if lid in an.hier)
    return (f"[conc] frontend={used} functions={len(an.prog.funcs)} "
            f"mutexes={len(an.prog.mutexes)} ranked={ranked} "
            f"edges={len(an.edges)} blocking_fns={n_block} "
            f"findings={len(an.findings)} suppressed={suppressed} "
            f"new={len(new)}")


def run_tree(args):
    paths = args.paths or [os.path.join(REPO, "src")]
    hier = load_hierarchy(args.hierarchy)
    an, used = analyze(paths, args.frontend, args.compile_commands, hier,
                       args.verbose)
    baseline = load_baseline(args.baseline)
    new = []
    for fd in an.findings:
        ent = baseline.get(fd.key)
        if ent is not None:
            ent["used"] = True
        else:
            new.append(fd)
    rc = 0
    for fd in new:
        print(render(fd))
        print()
        rc = 1
    stale = [k for k, e in baseline.items() if not e["used"]]
    for k in stale:
        print(f"STALE BASELINE: `{k}` no longer matches any finding — "
              f"remove it from {os.path.relpath(args.baseline, REPO)}")
        if args.strict_baseline:
            rc = 1
    print(_stats_line(an, used, new, len(an.findings) - len(new)))
    if rc == 0:
        print("[conc] OK: lock order respects the declared hierarchy and "
              "no lock is held across a blocking call (modulo justified "
              "baseline)")
    return rc


def run_edges(args):
    paths = args.paths or [os.path.join(REPO, "src")]
    hier = load_hierarchy(args.hierarchy)
    an, used = analyze(paths, args.frontend, args.compile_commands, hier,
                       args.verbose)
    print(f"# lock-acquisition edges ({used} frontend); "
          "H -> L means L acquired while H held")
    for (H, L), (fn, fl, ln, _via) in sorted(an.edges.items()):
        rh = an.hier.get(H, "?")
        rl = an.hier.get(L, "?")
        print(f"{H} (rank {rh}) -> {L} (rank {rl})   first: {fn} "
              f"at {fl}:{ln}")
    print()
    print("# functions that may block (transitively)")
    for q in sorted(an.sum):
        s = an.sum[q]
        if s.blocks and self_has_body(an.prog, q):
            sinks = ", ".join(sorted(s.blocks)[:4])
            print(f"{q}: {sinks}")
    return 0


def self_has_body(prog, q):
    f = prog.funcs.get(q)
    return bool(f and (f.has_body or f.annots))


def run_list(args):
    paths = args.paths or [os.path.join(REPO, "src")]
    hier = load_hierarchy(args.hierarchy)
    prog, used = build_program(paths, args.frontend, args.compile_commands)
    print(f"# mutex registry ({used} frontend)")
    for lid in sorted(prog.mutexes):
        info = prog.mutexes[lid]
        rank = hier.get(lid, "UNRANKED")
        print(f"{lid}  kind={info['kind']} rank={rank}  "
              f"({info['file']}:{info['line']})")
    print()
    print("# GLOBE_BLOCKING-annotated functions")
    for q in sorted(prog.funcs):
        f = prog.funcs[q]
        if ANNOT_BLOCKING in f.annots:
            print(f"{q}  ({f.file}:{f.line})")
    return 0


# --------------------------------------------------------------------------
# Self-test (fixture corpus)
# --------------------------------------------------------------------------

EXPECT_RE = re.compile(
    r"//\s*CONC-EXPECT:\s*(clean|flag\s+kind=(\S+)(?:\s+detail=(\S+))?)")
HIER_RE = re.compile(r"//\s*CONC-HIERARCHY:\s*(-?\d+)\s+(\S+)")


def run_self_test(args):
    fixture_dir = os.path.join(REPO, "tests", "conc", "fixtures")
    if not os.path.isdir(fixture_dir):
        print(f"no fixture directory at {fixture_dir}", file=sys.stderr)
        return 2
    use_clang = args.frontend == "clang"
    if use_clang:
        try:
            import clang.cindex  # noqa: F401
        except ImportError:
            print("frontend 'clang' requested for self-test but libclang "
                  "is unavailable", file=sys.stderr)
            return 2
    fixtures = sorted(f for f in os.listdir(fixture_dir) if f.endswith(".cpp"))
    failures = []
    for fx in fixtures:
        path = os.path.join(fixture_dir, fx)
        raw = open(path, encoding="utf-8").read()
        expects = EXPECT_RE.findall(raw)
        if not expects:
            failures.append(f"{fx}: no CONC-EXPECT comment")
            continue
        hier = {}
        for rank, lid in HIER_RE.findall(raw):
            hier[lid] = int(rank)
        if use_clang:
            try:
                prog = build_program_clang_single(path, [fixture_dir])
            except Exception as e:  # noqa: BLE001 - report as test failure
                failures.append(f"{fx}: clang parse failed: {e}")
                continue
        else:
            prog = build_program_lite([path])
        an = Analyzer(prog, hier)
        an.run()
        want_clean = any(e[0] == "clean" for e in expects)
        flags = [e for e in expects if e[0].startswith("flag")]
        if want_clean and an.findings:
            failures.append(
                f"{fx}: expected clean, got {len(an.findings)} finding(s):\n"
                + "\n".join("    " + f.key for f in an.findings))
            continue
        if not want_clean:
            unmatched = []
            for _e, kind, detail in flags:
                ok = any(fd.kind == kind and (not detail or detail in fd.key)
                         for fd in an.findings)
                if not ok:
                    unmatched.append(f"kind={kind} detail={detail}")
            extra = [fd for fd in an.findings
                     if not any(fd.kind == kind and
                                (not detail or detail in fd.key)
                                for _e, kind, detail in flags)]
            if unmatched:
                failures.append(
                    f"{fx}: expected finding not produced: "
                    f"{'; '.join(unmatched)}\n    got: "
                    + ("; ".join(fd.key for fd in an.findings) or "nothing"))
            if extra:
                failures.append(
                    f"{fx}: unexpected finding(s): "
                    + "; ".join(fd.key for fd in extra))
    frontend = "clang" if use_clang else "lite"
    print(f"[conc] self-test ({frontend}): {len(fixtures)} fixtures, "
          f"{len(failures)} failure(s)")
    for msg in failures:
        print("  FAIL " + msg)
    if len(fixtures) < 15:
        print(f"  FAIL corpus too small: {len(fixtures)} fixtures (< 15)")
        return 1
    return 1 if failures else 0


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("paths", nargs="*", help="files/dirs (default: src/)")
    ap.add_argument("--frontend", choices=("auto", "clang", "lite"),
                    default="auto")
    ap.add_argument("--compile-commands", default=os.path.join(REPO, "build"),
                    help="directory containing compile_commands.json")
    ap.add_argument("--hierarchy",
                    default=os.path.join(REPO, "tools", "lock_hierarchy.txt"))
    ap.add_argument("--baseline",
                    default=os.path.join(REPO, "tools", "conc_baseline.txt"))
    ap.add_argument("--strict-baseline", action="store_true",
                    help="stale baseline entries are errors")
    ap.add_argument("--self-test", action="store_true")
    ap.add_argument("--edges", action="store_true",
                    help="dump the lock-acquisition graph and blockers")
    ap.add_argument("--list", action="store_true",
                    help="dump mutex registry and blocking functions")
    ap.add_argument("--verbose", action="store_true")
    args = ap.parse_args()
    if args.self_test:
        if args.frontend == "auto":
            args.frontend = "lite"
        sys.exit(run_self_test(args))
    if args.list:
        sys.exit(run_list(args))
    if args.edges:
        sys.exit(run_edges(args))
    sys.exit(run_tree(args))


if __name__ == "__main__":
    main()
