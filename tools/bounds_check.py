#!/usr/bin/env python3
"""Resource-bound analysis for the GlobeDoc tree (DESIGN.md §14).

The paper's replicas, Location Service and naming servers are untrusted, so
every length or count field decoded off the wire is attacker-controlled.
This analyzer proves two resource invariants over the whole call graph:

  1. Untrusted-size allocation: any allocation-sized call — ``resize``,
     ``reserve``, the count form of ``assign``, count construction of
     ``std::string``/``std::vector``/``Bytes``, ``make_unique<T[]>`` — whose
     size derives from a GLOBE_UNTRUSTED source (the taint annotations of
     tools/taint_check.py are reused verbatim) must first pass a clamp
     annotated GLOBE_LENGTH_GUARD (``util::checked_count``,
     ``util::Reader::need``).  Findings carry the full source→allocation
     call chain.  ``substr`` and iterator-pair/copy construction are NOT
     sinks: the standard clamps their size to the existing object, so they
     are bounded by input already allocated.  Likewise ``.size()`` of a
     tainted buffer is input-bounded metadata, not an untrusted size.

  2. Unbounded-growth state: a container member grown
     (push_back/emplace/insert/append/+=) from a member function of a
     long-lived class (anything in src/cache, src/replication, src/obs, or a
     class whose name marks it as a server/proxy/dispatcher/pool/...) must
     either carry GLOBE_BOUNDED (src/util/bounds_annotations.hpp) or be
     ranked in tools/capacity_bounds.txt.  A declared bound must be real:
     unless its registry entry is capacity 0 (grows only during trusted
     configuration), the class must contain an enforcement point for the
     member — an eviction/shrink call or a size check.

Two interchangeable frontends produce the same per-function IR, exactly as
in tools/taint_check.py and tools/conc_check.py:

  * ``clang`` — libclang over compile_commands.json, reading the
    ``[[clang::annotate("globe::...")]]`` attributes (CI).
  * ``lite``  — a stdlib-only tokenizer recognizing the GLOBE_* macro tokens
    in the text, so plain ``ctest`` enforces the invariants everywhere.

Intentional exceptions are suppressed through tools/bounds_baseline.txt,
which requires a written justification per entry.

Exit status: 0 = clean (modulo baseline), 1 = findings or stale baseline,
2 = usage/environment error.

Usage:
  tools/bounds_check.py [--frontend auto|clang|lite] [paths...]
  tools/bounds_check.py --self-test [--frontend clang]   # tests/bounds/
  tools/bounds_check.py --list      # guards, bounded members, growth sites
"""

from __future__ import annotations

import argparse
import os
import re
import sys
from dataclasses import dataclass, field

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

ANNOT_UNTRUSTED = "untrusted"
ANNOT_GUARD = "length_guard"
ANNOT_BOUNDED = "bounded"

MACRO_OF = {
    "GLOBE_UNTRUSTED": ANNOT_UNTRUSTED,
    "GLOBE_LENGTH_GUARD": ANNOT_GUARD,
}
CLANG_ANNOTATION_OF = {
    "globe::untrusted": ANNOT_UNTRUSTED,
    "globe::length_guard": ANNOT_GUARD,
}

# Sibling-analyzer macros: recognized so their tokens never corrupt
# parameter or expression parsing, but carry no meaning here.
_OTHER_MACROS = {
    "GLOBE_SANITIZER", "GLOBE_TRUSTED_SINK", "GLOBE_BLOCKING",
    "GLOBE_BOUNDED", "GLOBE_EXCLUDES", "GLOBE_REQUIRES", "GLOBE_GUARDED_BY",
    "GLOBE_PT_GUARDED_BY", "GLOBE_ACQUIRE", "GLOBE_RELEASE",
    "GLOBE_NO_THREAD_SAFETY_ANALYSIS", "GLOBE_SCOPED_CAPABILITY",
    "GLOBE_CAPABILITY",
}

# Accessor methods whose results are metadata, not attacker-chosen sizes:
# `out.resize(in.size())` allocates only as much as the input actually
# holds, which is the same input-bounded guarantee Reader::need enforces.
# find()-family results are positions within the receiver, bounded by its
# size, so `path.resize(path.find('?'))` is equally input-bounded.
SIZE_FILTER_METHODS = {"is_ok", "status", "code", "size", "empty", "length",
                       "find", "rfind", "find_first_of", "find_last_of",
                       "find_first_not_of", "find_last_not_of"}

# Method names of std:: containers/strings; a call through an UNTYPED
# receiver with one of these names must never alias onto project code by
# name (same guard as taint_check).
STD_CONTAINER_METHODS = {
    "insert", "erase", "assign", "append", "push_back", "pop_back",
    "emplace", "emplace_back", "find", "count", "at", "substr", "clear",
    "resize", "reserve", "begin", "end", "front", "back", "data", "c_str",
    "str",
}

# --- analysis 1 tables ------------------------------------------------------

# Receiver methods whose first argument is an element count that the callee
# will allocate for.
RECV_ALLOC_METHODS = {"resize", "reserve"}
# Count-construction types: `T x(n, fill)` with a literal fill allocates n
# elements.  (The iterator-pair and copy forms are input-bounded and the
# 1-arg form is ambiguous with copy construction, so only the 2-arg
# count+literal-fill shape is a sink — it is also the only shape the tree
# uses for wire-sized buffers.)
CTOR_ALLOC_TYPES = {"vector", "basic_string", "string", "deque", "Bytes",
                    "Buffer"}
# Template functions the lite frontend must parse through `<...>` to see the
# call: make_unique<T[]>(n) allocates n elements.
_TEMPLATE_CALLS = {"make_unique"}

# --- analysis 2 tables ------------------------------------------------------

# Subsystems whose every class holds long-lived state.
GROWTH_SUBSYS = {"cache", "replication", "obs"}
# Elsewhere, class names that mark server-side long-lived state.
LONGLIVED_RE = re.compile(
    r"(Server|Dispatcher|Proxy|Tier|Framer|Pool|Registry|Replicator|"
    r"Coordinator|Maintainer|Collector|Aggregator|Auditor|Evaluator|"
    r"Tracer|Cache|Node|Client|SingleFlight|EventLog)")

GROWTH_METHODS = {"push_back", "emplace_back", "emplace", "try_emplace",
                  "insert", "push", "append", "push_front", "emplace_front"}
CONTAINER_TYPES = {"vector", "deque", "list", "map", "multimap",
                   "unordered_map", "set", "multiset", "unordered_set",
                   "queue", "priority_queue", "string", "basic_string",
                   "Bytes"}
# Enforcement evidence: a shrink/eviction call or a size check on the member
# anywhere in the class shows the declared bound is actually enforced.
SHRINK_METHODS = {"erase", "pop_front", "pop_back", "pop", "clear",
                  "resize", "shrink_to_fit"}
EVIDENCE_METHODS = SHRINK_METHODS | {"size", "empty", "length"}

MAX_CHAIN = 12  # call-chain depth cap when materializing findings


def subsys_of(relpath: str) -> str:
    parts = relpath.replace("\\", "/").split("/")
    if parts[0] == "src" and len(parts) >= 3:
        return parts[1]
    return "test"


# --------------------------------------------------------------------------
# Shared IR
# --------------------------------------------------------------------------

@dataclass
class Arg:
    """One argument expression: identifier references + nested calls."""
    refs: list = field(default_factory=list)
    calls: list = field(default_factory=list)


@dataclass
class CallSite:
    line: int = 0
    chain: list = field(default_factory=list)
    explicit: bool = False                       # qualified with :: (no receiver)
    array_form: bool = False                     # make_unique<T[]>-style call
    recv: str | None = None                      # receiver variable, if any
    recv_path: list = field(default_factory=list)
    args: list = field(default_factory=list)     # list[Arg]

    @property
    def name(self):
        return self.chain[-1] if self.chain else ""


@dataclass
class Stmt:
    line: int = 0
    is_return: bool = False
    lhs: str | None = None
    lhs_is_member = False
    compound: bool = False
    decl_type: str | None = None
    refs: list = field(default_factory=list)
    calls: list = field(default_factory=list)


@dataclass
class Param:
    name: str | None = None
    type: str | None = None
    annots: set = field(default_factory=set)


@dataclass
class Func:
    qname: str = ""
    file: str = ""
    line: int = 0
    cls: str | None = None
    annots: set = field(default_factory=set)
    params: list = field(default_factory=list)
    stmts: list = field(default_factory=list)
    has_body: bool = False
    local_types: dict = field(default_factory=dict)


@dataclass
class Program:
    funcs: dict = field(default_factory=dict)    # qname -> Func
    by_name: dict = field(default_factory=dict)  # unqualified -> [qname]
    fields: dict = field(default_factory=dict)   # class -> {field -> type}
    # class -> {field -> {"type","file","line","bounded"}}
    field_info: dict = field(default_factory=dict)

    def add(self, f: Func):
        prev = self.funcs.get(f.qname)
        if prev is None:
            self.funcs[f.qname] = f
            self.by_name.setdefault(f.qname.split("::")[-1], []).append(f.qname)
            return
        prev.annots |= f.annots
        for i, p in enumerate(f.params):
            if i < len(prev.params):
                prev.params[i].annots |= p.annots
                if prev.params[i].name is None:
                    prev.params[i].name = p.name
                if prev.params[i].type is None:
                    prev.params[i].type = p.type
            else:
                prev.params.append(p)
        if f.has_body and not prev.has_body:
            prev.stmts, prev.has_body = f.stmts, True
            prev.file, prev.line = f.file, f.line
            prev.local_types.update(f.local_types)

    def add_field(self, cls, name, ftype, file, line, bounded):
        info = self.field_info.setdefault(cls, {})
        if name not in info:
            info[name] = {"type": ftype, "file": file, "line": line,
                          "bounded": bounded}
        elif bounded:
            info[name]["bounded"] = True
        self.fields.setdefault(cls, {}).setdefault(name, ftype)


# --------------------------------------------------------------------------
# Lite frontend: tokenizer + scope-tracking parser
# --------------------------------------------------------------------------

_TOKEN_RE = re.compile(
    r"""[A-Za-z_]\w*          # identifier
      | 0[xX][0-9a-fA-F']+ | \d[\d.'eEfuUlL]*   # numbers
      | ::|->\*?|\.\*|<<=|>>=|<=>|==|!=|<=|>=|&&|\|\||\+=|-=|\*=|/=|%=|\|=|&=|\^=|<<|>>|\+\+|--
      | [{}()\[\];,<>=!&|*+\-/%?:~^.\#@]
    """,
    re.VERBOSE,
)

_KEYWORDS = {
    "if", "else", "for", "while", "do", "switch", "case", "default", "break",
    "continue", "return", "goto", "try", "catch", "throw", "new", "delete",
    "sizeof", "alignof", "static_cast", "dynamic_cast", "const_cast",
    "reinterpret_cast", "true", "false", "nullptr", "this", "const",
    "constexpr", "static", "inline", "virtual", "override", "final",
    "noexcept", "mutable", "explicit", "auto", "void", "bool", "char", "int",
    "unsigned", "signed", "long", "short", "float", "double", "class",
    "struct", "enum", "union", "namespace", "using", "typedef", "template",
    "typename", "public", "private", "protected", "friend", "operator",
    "co_await", "co_return", "co_yield", "std",
}

# Macros that may carry a parenthesized argument in the qualifier zone of a
# declarator (between `)` and `{`/`;`).
_QUAL_MACROS = {"GLOBE_EXCLUDES", "GLOBE_REQUIRES", "GLOBE_GUARDED_BY",
                "GLOBE_PT_GUARDED_BY", "GLOBE_ACQUIRE", "GLOBE_RELEASE",
                "GLOBE_NO_THREAD_SAFETY_ANALYSIS", "GLOBE_SCOPED_CAPABILITY",
                "GLOBE_BLOCKING", "GLOBE_SANITIZER", "GLOBE_TRUSTED_SINK",
                "GLOBE_BOUNDED"}

_CONTROL = {"if", "for", "while", "switch", "catch", "else", "do", "try"}


def _strip_comments(text: str) -> str:
    """Removes comments, string/char literals and preprocessor directives,
    preserving newlines so token line numbers stay correct."""
    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        if c == "/" and i + 1 < n and text[i + 1] == "/":
            j = text.find("\n", i)
            i = n if j < 0 else j
        elif c == "/" and i + 1 < n and text[i + 1] == "*":
            j = text.find("*/", i + 2)
            seg = text[i:(n if j < 0 else j + 2)]
            out.append("\n" * seg.count("\n"))
            i = n if j < 0 else j + 2
        elif c == "'" and i > 0 and text[i - 1] in "0123456789abcdefABCDEF" \
                and i + 1 < n and text[i + 1].isalnum():
            i += 1  # digit separator (1'000'000), not a char literal
        elif c in "\"'":
            quote, j = c, i + 1
            while j < n and text[j] != quote:
                j += 2 if text[j] == "\\" else 1
            out.append('""' if quote == '"' else "0")
            i = min(j + 1, n)
        elif c == "#" and (i == 0 or text[i - 1] == "\n"):
            j = i
            while j < n:
                k = text.find("\n", j)
                if k < 0:
                    j = n
                    break
                if text[k - 1] == "\\":
                    j = k + 1
                    continue
                j = k
                break
            seg = text[i:j]
            out.append("\n" * seg.count("\n"))
            i = j
        else:
            out.append(c)
            i += 1
    return "".join(out)


def _tokenize(text: str):
    toks = []
    line = 1
    pos = 0
    for m in _TOKEN_RE.finditer(text):
        line += text.count("\n", pos, m.start())
        pos = m.start()
        toks.append((m.group(0), line))
    return toks


def _match_forward(toks, i, open_t, close_t):
    depth = 0
    while i < len(toks):
        t = toks[i][0]
        if t == open_t:
            depth += 1
        elif t == close_t:
            depth -= 1
            if depth == 0:
                return i + 1
        i += 1
    return len(toks)


def _split_top(toks, sep=","):
    parts, cur = [], []
    p = a = 0
    for tk in toks:
        t = tk[0]
        if t in "([{":
            p += 1
        elif t in ")]}":
            p -= 1
        elif t == "<":
            a += 1
        elif t == ">" and a > 0:
            a -= 1
        if t == sep and p == 0 and a == 0:
            parts.append(cur)
            cur = []
        else:
            cur.append(tk)
    parts.append(cur)
    return parts


def _parse_param(toks) -> Param:
    p = Param()
    for idx, tk in enumerate(toks):
        if tk[0] == "=" and _paren_depth_ok(toks, idx):
            toks = toks[:idx]
            break
    idents = [(i, tk[0]) for i, tk in enumerate(toks)
              if re.match(r"[A-Za-z_]", tk[0])]
    kept = []
    for i, name in idents:
        if name in MACRO_OF:
            p.annots.add(MACRO_OF[name])
        elif name in _OTHER_MACROS:
            continue
        elif name not in ("const", "struct", "typename", "volatile"):
            kept.append((i, name))
    if not kept:
        return p
    li, lname = kept[-1]
    prev = toks[li - 1][0] if li > 0 else None
    if len(kept) >= 2 and prev not in ("::", "<", ","):
        p.name = lname
        p.type = kept[-2][1] if kept[-2][1] != "::" else None
        for i, name in reversed(kept[:-1]):
            p.type = name
            break
    else:
        p.type = lname
    return p


def _paren_depth_ok(toks, idx):
    d = a = 0
    for tk in toks[:idx]:
        t = tk[0]
        if t in "([{":
            d += 1
        elif t in ")]}":
            d -= 1
        elif t == "<":
            a += 1
        elif t == ">" and a > 0:
            a -= 1
    return d == 0 and a == 0


def _parse_expr(toks):
    """Recursive descent over an expression token list -> (refs, calls)."""
    refs, calls = [], []
    i = 0
    n = len(toks)
    while i < n:
        t, line = toks[i]
        if re.match(r"[A-Za-z_]", t) and t not in _KEYWORDS \
                and t not in MACRO_OF and t not in _OTHER_MACROS:
            chain, seps = [t], []
            j = i + 1
            while j + 1 < n and toks[j][0] in ("::", ".", "->") \
                    and re.match(r"[A-Za-z_]", toks[j + 1][0]) \
                    and toks[j + 1][0] not in _KEYWORDS:
                seps.append(toks[j][0])
                chain.append(toks[j + 1][0])
                j += 2
            # make_unique<T[]>(n): hop the template argument list so the
            # call and its count argument are visible.  Only the array form
            # allocates a count — make_unique<T>(args) forwards to a ctor.
            array_form = False
            if j < n and toks[j][0] == "<" and chain[-1] in _TEMPLATE_CALLS:
                d, k = 0, j
                while k < n:
                    if toks[k][0] == "<":
                        d += 1
                    elif toks[k][0] == ">":
                        d -= 1
                        if d == 0:
                            break
                    elif toks[k][0] == "[":
                        array_form = True
                    k += 1
                if k + 1 < n and toks[k + 1][0] == "(":
                    j = k + 1
            if j < n and toks[j][0] == "(":
                cs = CallSite(line=line, chain=chain, array_form=array_form)
                if seps and seps[-1] in (".", "->"):
                    cs.recv_path = chain[:-1]
                    cs.recv = cs.recv_path[0]
                else:
                    cs.explicit = bool(seps)
                end = _match_forward(toks, j, "(", ")")
                inner = toks[j + 1:end - 1]
                for part in _split_top(inner):
                    if not part:
                        continue
                    arefs, acalls = _parse_expr(part)
                    cs.args.append(Arg(refs=arefs, calls=acalls))
                calls.append(cs)
                i = end
                continue
            if seps and all(s == "::" for s in seps):
                i = j  # qualified constant: not a variable
                continue
            refs.append(chain[0])
            i = j
            continue
        i += 1
    return refs, calls


_SINGLE_TYPES = {"auto", "bool", "int", "unsigned", "long", "short", "float",
                 "double", "char", "size_t", "uint32_t", "uint64_t"}


def _parse_stmt(seg) -> Stmt | None:
    if not seg:
        return None
    st = Stmt(line=seg[0][1])
    while seg and seg[0][0] in ("else", "do", "try"):
        seg = seg[1:]
    if not seg:
        return None
    head = seg[0][0]
    if head in ("case", "default", "break", "continue", "goto", "using",
                "public", "private", "protected"):
        return None
    cond_refs, cond_calls = [], []
    if head == "return":
        st.is_return = True
        seg = seg[1:]
    elif head in ("if", "while", "switch", "for", "catch"):
        seg = seg[1:]
        if seg and seg[0][0] == "(":
            end = _match_forward(seg, 0, "(", ")")
            inner = seg[1:end - 1]
            rest = seg[end:]
            if head == "for":
                colon = [i for i, tk in enumerate(inner)
                         if tk[0] == ":" and _paren_depth_ok(inner, i)]
                if colon:
                    lhs = inner[:colon[0]]
                    idents = [tk[0] for tk in lhs if re.match(r"[A-Za-z_]", tk[0])
                              and tk[0] not in _KEYWORDS]
                    st.lhs = idents[-1] if idents else None
                    inner = inner[colon[0] + 1:]
            if rest:
                cond_refs, cond_calls = _parse_expr(inner)
                if rest[0][0] == "return":
                    st.is_return = True
                    rest = rest[1:]
                seg = rest
            else:
                seg = inner
    eq = None
    compound = False
    for idx, tk in enumerate(seg):
        if _paren_depth_ok(seg, idx):
            if tk[0] == "=":
                eq = idx
                break
            if tk[0] in ("+=", "-=", "*=", "/=", "|=", "&=", "^=", "<<=", ">>="):
                eq = idx
                compound = True
                break
    if eq is not None and st.lhs is None:
        lhs_toks = seg[:eq]
        idents = [tk[0] for tk in lhs_toks if re.match(r"[A-Za-z_]", tk[0])
                  and tk[0] not in _KEYWORDS and tk[0] not in MACRO_OF
                  and tk[0] not in _OTHER_MACROS]
        member = any(tk[0] in (".", "->", "[") for tk in lhs_toks)
        if idents:
            if member:
                st.lhs = idents[0]
                st.lhs_is_member = True
                st.refs.extend(idents[1:])
            else:
                st.lhs = idents[-1]
                if len(idents) >= 2:
                    st.decl_type = idents[-2]
        st.compound = compound
        seg = seg[eq + 1:]
    elif eq is None and st.lhs is None and not st.is_return:
        idents = []
        for idx, tk in enumerate(seg):
            if re.match(r"[A-Za-z_]", tk[0]):
                idents.append((idx, tk[0]))
            elif tk[0] in ("(", "{"):
                break
            elif tk[0] not in ("::", "<", ">", "&", "*", ",", "const"):
                idents = []
                break
        vals = [x for x in idents if x[1] not in _KEYWORDS or x[1] in _SINGLE_TYPES]
        if len(vals) >= 2:
            last_idx, last = vals[-1]
            nxt = seg[last_idx + 1][0] if last_idx + 1 < len(seg) else None
            prev = seg[last_idx - 1][0] if last_idx > 0 else None
            if nxt in ("(", "{") and prev not in ("::", ".", "->"):
                st.lhs = last
                st.decl_type = vals[-2][1]
                end = _match_forward(seg, last_idx + 1,
                                     nxt, ")" if nxt == "(" else "}")
                inner = seg[last_idx + 2:end - 1]
                cs = CallSite(line=st.line, chain=[st.decl_type, st.decl_type],
                              explicit=True)
                for part in _split_top(inner):
                    if not part:
                        continue
                    arefs, acalls = _parse_expr(part)
                    cs.args.append(Arg(refs=arefs, calls=acalls))
                st.calls.append(cs)
                return st
    refs, calls = _parse_expr(seg)
    st.refs.extend(refs)
    st.calls.extend(calls)
    st.refs.extend(cond_refs)
    st.calls.extend(cond_calls)
    if st.lhs is None and st.decl_type is None and not st.is_return \
            and not st.calls and not st.refs:
        return None
    return st


def _parse_body(toks):
    stmts = []
    local_types = {}
    seg = []
    i, n = 0, len(toks)
    pdepth = 0
    while i < n:
        t, line = toks[i]
        if t == "(":
            pdepth += 1
            seg.append(toks[i])
        elif t == ")":
            pdepth -= 1
            seg.append(toks[i])
        elif t == ";" and pdepth == 0:
            st = _parse_stmt(seg)
            if st:
                stmts.append(st)
                if st.decl_type and st.lhs:
                    local_types[st.lhs] = st.decl_type
                elif st.lhs and st.lhs not in local_types \
                        and len(st.calls) == 1 and st.calls[0].explicit \
                        and len(st.calls[0].chain) >= 2 \
                        and st.calls[0].chain[-2][:1].isupper():
                    local_types[st.lhs] = st.calls[0].chain[-2]
            seg = []
        elif t == "{" and pdepth == 0:
            heads = [tk[0] for tk in seg]
            if not seg or heads[0] in _CONTROL:
                st = _parse_stmt(seg)
                if st:
                    stmts.append(st)
                seg = []  # descend into the block
            else:
                end = _match_forward(toks, i, "{", "}")
                seg.extend(toks[i + 1:end - 1])
                i = end
                continue
        elif t == "}" and pdepth == 0:
            st = _parse_stmt(seg)
            if st:
                stmts.append(st)
            seg = []
        else:
            seg.append(toks[i])
        i += 1
    st = _parse_stmt(seg)
    if st:
        stmts.append(st)
    return stmts, local_types


def parse_file_lite(path: str, prog: Program):
    text = _strip_comments(open(path, encoding="utf-8", errors="replace").read())
    toks = _tokenize(text)
    scopes = []
    pending = []
    i, n = 0, len(toks)

    def qname(parts):
        names = [s[1] for s in scopes if s[0] in ("ns", "class") and s[1]]
        return "::".join(names + parts)

    def cur_class():
        for s in reversed(scopes):
            if s[0] == "class":
                return s[1]
        return None

    while i < n:
        t, line = toks[i]
        if t == "namespace":
            j = i + 1
            names = []
            while j < n and toks[j][0] not in ("{", ";", "="):
                if re.match(r"[A-Za-z_]", toks[j][0]):
                    names.append(toks[j][0])
                j += 1
            if j < n and toks[j][0] == "{":
                scopes.append(("ns", "::".join(names)))
                i = j + 1
            else:
                i = j + 1
            pending = []
            continue
        if t in ("class", "struct") and not (pending and pending[-1][0] == "enum"):
            j = i + 1
            name = None
            while j < n and toks[j][0] not in ("{", ";"):
                if re.match(r"[A-Za-z_]", toks[j][0]) and name is None:
                    name = toks[j][0]
                if toks[j][0] == "(":
                    break
                j += 1
            if j < n and toks[j][0] == "{" and name:
                scopes.append(("class", name, 1))
                i = j + 1
                pending = []
                continue
            pending.append(toks[i])
            i += 1
            continue
        if t == "template":
            if i + 1 < n and toks[i + 1][0] == "<":
                d = 0
                j = i + 1
                while j < n:
                    if toks[j][0] == "<":
                        d += 1
                    elif toks[j][0] == ">":
                        d -= 1
                        if d == 0:
                            break
                    j += 1
                i = j + 1
                continue
        if t == "{":
            i = _match_forward(toks, i, "{", "}")
            pending = []
            continue
        if t == "}":
            if scopes:
                scopes.pop()
            if i + 1 < n and toks[i + 1][0] == ";":
                i += 1
            i += 1
            pending = []
            continue
        if t == ";":
            pending = []
            i += 1
            continue
        if t == "(" and pending:
            name_parts = []
            j = len(pending) - 1
            if re.match(r"[A-Za-z_]", pending[j][0]) \
                    and pending[j][0] not in _KEYWORDS - {"operator"}:
                name_parts.append(pending[j][0])
                j -= 1
                while j >= 1 and pending[j][0] == "::" \
                        and re.match(r"[A-Za-z_]", pending[j - 1][0]):
                    name_parts.append(pending[j - 1][0])
                    j -= 2
            name_parts.reverse()
            is_dtor = j >= 0 and pending[j][0] == "~"
            is_op = "operator" in [p[0] for p in pending[max(0, j - 1):]]
            if not name_parts or is_op:
                i = _match_forward(toks, i, "(", ")")
                continue
            close = _match_forward(toks, i, "(", ")")
            ptoks = toks[i + 1:close - 1]
            k = close
            kind = None
            while k < n:
                q = toks[k][0]
                if q == ";":
                    kind = "decl"
                    break
                if q == "{":
                    kind = "def"
                    break
                if q == "=":
                    kind = "decl"
                    while k < n and toks[k][0] != ";":
                        k += 1
                    break
                if q == ":":
                    k += 1
                    while k < n:
                        qq = toks[k][0]
                        if qq == "(":
                            k = _match_forward(toks, k, "(", ")")
                            continue
                        if qq == "{":
                            prev = toks[k - 1][0]
                            if prev in (")", "}"):
                                break
                            k = _match_forward(toks, k, "{", "}")
                            continue
                        k += 1
                    kind = "def"
                    break
                if q in _QUAL_MACROS and k + 1 < n and toks[k + 1][0] == "(":
                    k = _match_forward(toks, k + 1, "(", ")")
                    continue
                if q == "(":
                    kind = "skip"
                    break
                k += 1
            if kind is None:
                kind = "skip"
            kind_final = "skip" if is_dtor else kind
            if kind_final == "skip":
                i = close
                continue
            f = Func(file=os.path.relpath(path, REPO), line=line)
            ann_toks = [p[0] for p in pending] + \
                       [toks[m][0] for m in range(close, min(k, n))]
            for tok in ann_toks:
                if tok in MACRO_OF:
                    f.annots.add(MACRO_OF[tok])
            for part in _split_top(ptoks):
                part = [tk for tk in part]
                if not part or (len(part) == 1 and part[0][0] == "void"):
                    continue
                f.params.append(_parse_param(part))
            cls = cur_class()
            parts = name_parts[:]
            f.qname = qname(parts)
            f.cls = cls if cls else (parts[-2] if len(parts) >= 2 else None)
            if kind == "def":
                body_start = k
                body_end = _match_forward(toks, body_start, "{", "}")
                f.stmts, f.local_types = _parse_body(toks[body_start + 1:body_end - 1])
                f.has_body = True
                for p in f.params:
                    if p.name and p.type:
                        f.local_types.setdefault(p.name, p.type)
                prog.add(f)
                i = body_end
                pending = []
                continue
            else:
                prog.add(f)
                i = k + 1
                pending = []
                continue
        pending.append(toks[i])
        i += 1

    _harvest_fields(text, os.path.relpath(path, REPO), prog)


# Member declarations, one nesting level of template arguments, optional
# trailing GLOBE_* annotation zone (GLOBE_BOUNDED, GLOBE_GUARDED_BY(...)),
# optional default member initializer.
_TPL = r"<(?:[^<>;]|<[^<>;]*>)*>"
_FIELD_RE = re.compile(
    r"^\s*(?:mutable\s+)?(?:const\s+)?([A-Za-z_][\w:]*(?:" + _TPL + r")?)"
    r"[&*\s]+([A-Za-z_]\w*)\s*"
    r"((?:GLOBE_\w+(?:\([^)]*\))?\s*)*)"
    r"(?:=[^;]*|\{[^;]*\})?;",
    re.MULTILINE,
)
_CLASS_RE = re.compile(r"\b(?:class|struct)\s+([A-Za-z_]\w*)[^;{]*\{")


def _mask_nested_braces(body: str) -> str:
    """Blanks the contents of any brace block inside a class body (inline
    method bodies, nested classes, default initializers) so the field regex
    only sees the class's own member declarations."""
    out = []
    depth = 0
    for c in body:
        if c == "{":
            out.append(c if depth == 0 else " ")
            depth += 1
        elif c == "}":
            depth -= 1
            out.append(c if depth == 0 else " ")
        else:
            out.append(c if depth <= 1 or c == "\n" else " ")
    return "".join(out)


def _harvest_fields(text: str, relpath: str, prog: Program):
    for cm in _CLASS_RE.finditer(text):
        cls = cm.group(1)
        depth = 0
        j = cm.end() - 1
        start = j
        while j < len(text):
            if text[j] == "{":
                depth += 1
            elif text[j] == "}":
                depth -= 1
                if depth == 0:
                    break
            j += 1
        body = _mask_nested_braces(text[start:j])
        base_line = text.count("\n", 0, start) + 1
        for fm in _FIELD_RE.finditer(body):
            ftype = fm.group(1).split("<")[0].split("::")[-1]
            if ftype in ("return", "using", "typedef", "namespace"):
                continue
            line = base_line + body.count("\n", 0, fm.start())
            bounded = "GLOBE_BOUNDED" in fm.group(3)
            prog.add_field(cls, fm.group(2), ftype, relpath, line, bounded)


def collect_sources(root):
    out = []
    for base, _dirs, files in os.walk(root):
        for fn in sorted(files):
            if fn.endswith((".hpp", ".cpp", ".h", ".cc")):
                out.append(os.path.join(base, fn))
    return out


def build_program_lite(paths) -> Program:
    prog = Program()
    for p in paths:
        parse_file_lite(p, prog)
    return prog


# --------------------------------------------------------------------------
# libclang frontend
# --------------------------------------------------------------------------

def _clang_collect(tu, prog, in_scope, ci):
    def annots_of(cursor):
        out = set()
        for ch in cursor.get_children():
            if ch.kind == ci.CursorKind.ANNOTATE_ATTR:
                a = CLANG_ANNOTATION_OF.get(ch.spelling)
                if a:
                    out.add(a)
        return out

    def qualified(cursor):
        parts = []
        c = cursor
        while c is not None and c.kind != ci.CursorKind.TRANSLATION_UNIT:
            if c.spelling:
                parts.append(c.spelling)
            c = c.semantic_parent
        return "::".join(reversed(parts))

    def expr_to_arg(node) -> Arg:
        arg = Arg()
        collect_expr(node, arg.refs, arg.calls)
        return arg

    def collect_expr(node, refs, calls):
        k = node.kind
        if k == ci.CursorKind.CALL_EXPR:
            cs = CallSite(line=node.location.line)
            ref = node.referenced
            if ref is not None and ref.spelling:
                cs.chain = qualified(ref).split("::")
                cs.explicit = True
            else:
                cs.chain = [node.spelling or "?"]
            if cs.name in _TEMPLATE_CALLS and "[]" in node.type.spelling:
                cs.array_form = True
            children = list(node.get_children())
            args = list(node.get_arguments())
            if children and children[0] not in args:
                base_refs, base_calls = [], []
                collect_expr(children[0], base_refs, base_calls)
                if base_refs:
                    # Receiver taint flows through call_atoms(recv), exactly
                    # as in the lite frontend — leaking the receiver into the
                    # surrounding refs would defeat the size()/find() filter
                    # (`reserve(buf.size())` must stay input-bounded).
                    cs.recv = base_refs[0]
                    cs.recv_path = base_refs
                calls.extend(base_calls)
            for a in args:
                cs.args.append(expr_to_arg(a))
            calls.append(cs)
            return
        if k == ci.CursorKind.DECL_REF_EXPR:
            if node.spelling:
                refs.append(node.spelling)
            return
        if k == ci.CursorKind.MEMBER_REF_EXPR:
            base = list(node.get_children())
            before = len(refs)
            if base:
                collect_expr(base[0], refs, calls)
            # Implicit-this member access (`ring_.push_back(...)`): the base
            # subtree is just CXXThisExpr and yields no refs — the member
            # itself is the receiver variable.
            if len(refs) == before and node.spelling:
                refs.append(node.spelling)
            return
        for ch in node.get_children():
            collect_expr(ch, refs, calls)

    def linearize(node, stmts, local_types):
        k = node.kind
        if k == ci.CursorKind.COMPOUND_STMT:
            for ch in node.get_children():
                linearize(ch, stmts, local_types)
            return
        if k in (ci.CursorKind.IF_STMT, ci.CursorKind.WHILE_STMT,
                 ci.CursorKind.FOR_STMT, ci.CursorKind.SWITCH_STMT,
                 ci.CursorKind.CXX_TRY_STMT, ci.CursorKind.CXX_CATCH_STMT,
                 ci.CursorKind.DO_STMT, ci.CursorKind.CASE_STMT,
                 ci.CursorKind.DEFAULT_STMT, ci.CursorKind.CXX_FOR_RANGE_STMT):
            for ch in node.get_children():
                if k == ci.CursorKind.CXX_FOR_RANGE_STMT \
                        and ch.kind == ci.CursorKind.VAR_DECL:
                    st = Stmt(line=ch.location.line, lhs=ch.spelling)
                    for sub in ch.get_children():
                        collect_expr(sub, st.refs, st.calls)
                    stmts.append(st)
                    continue
                linearize(ch, stmts, local_types)
            return
        if k == ci.CursorKind.DECL_STMT:
            for ch in node.get_children():
                if ch.kind == ci.CursorKind.VAR_DECL:
                    st = Stmt(line=ch.location.line, lhs=ch.spelling)
                    tname = ch.type.spelling.split("<")[0].split("::")[-1].strip("& *")
                    st.decl_type = tname or None
                    if st.decl_type:
                        local_types[ch.spelling] = st.decl_type
                    for sub in ch.get_children():
                        collect_expr(sub, st.refs, st.calls)
                    stmts.append(st)
            return
        if k == ci.CursorKind.RETURN_STMT:
            st = Stmt(line=node.location.line, is_return=True)
            for ch in node.get_children():
                collect_expr(ch, st.refs, st.calls)
            stmts.append(st)
            return
        if k == ci.CursorKind.BINARY_OPERATOR or \
                k == ci.CursorKind.COMPOUND_ASSIGNMENT_OPERATOR:
            kids = list(node.get_children())
            if len(kids) == 2:
                lrefs, lcalls = [], []
                collect_expr(kids[0], lrefs, lcalls)
                st = Stmt(line=node.location.line)
                if lrefs:
                    st.lhs = lrefs[0]
                    st.lhs_is_member = len(lrefs) > 1
                st.compound = (k == ci.CursorKind.COMPOUND_ASSIGNMENT_OPERATOR)
                collect_expr(kids[1], st.refs, st.calls)
                st.calls.extend(lcalls)
                stmts.append(st)
                return
        st = Stmt(line=node.location.line)
        collect_expr(node, st.refs, st.calls)
        if st.refs or st.calls:
            stmts.append(st)

    for cur in tu.cursor.walk_preorder():
        if cur.kind not in (ci.CursorKind.FUNCTION_DECL,
                            ci.CursorKind.CXX_METHOD,
                            ci.CursorKind.CONSTRUCTOR):
            continue
        if not in_scope(cur.location.file.name if cur.location.file else None):
            continue
        f = Func(qname=qualified(cur),
                 file=os.path.relpath(cur.location.file.name, REPO),
                 line=cur.location.line)
        f.annots = annots_of(cur)
        sp = cur.semantic_parent
        if sp is not None and sp.kind in (ci.CursorKind.CLASS_DECL,
                                          ci.CursorKind.STRUCT_DECL):
            f.cls = sp.spelling
        for pc in cur.get_arguments():
            p = Param(name=pc.spelling or None,
                      type=pc.type.spelling.split("<")[0]
                      .split("::")[-1].strip("& *") or None)
            p.annots = annots_of(pc)
            f.params.append(p)
        body = None
        for ch in cur.get_children():
            if ch.kind == ci.CursorKind.COMPOUND_STMT:
                body = ch
        if body is not None:
            f.has_body = True
            linearize(body, f.stmts, f.local_types)
            for p in f.params:
                if p.name and p.type:
                    f.local_types.setdefault(p.name, p.type)
        prog.add(f)
    for cur in tu.cursor.walk_preorder():
        if cur.kind == ci.CursorKind.FIELD_DECL and \
                in_scope(cur.location.file.name if cur.location.file else None):
            cls = cur.semantic_parent.spelling
            t = cur.type.spelling.split("<")[0].split("::")[-1].strip("& *")
            if not cls or not t:
                continue
            bounded = False
            for ch in cur.get_children():
                if ch.kind == ci.CursorKind.ANNOTATE_ATTR \
                        and ch.spelling == "globe::bounded":
                    bounded = True
            prog.add_field(cls, cur.spelling, t,
                           os.path.relpath(cur.location.file.name, REPO),
                           cur.location.line, bounded)


def build_program_clang(paths, compile_commands_dir) -> Program:
    import clang.cindex as ci  # noqa: imported lazily; CI installs libclang

    prog = Program()
    index = ci.Index.create()
    try:
        cdb = ci.CompilationDatabase.fromDirectory(compile_commands_dir)
    except ci.CompilationDatabaseError:
        raise RuntimeError(
            f"no compile_commands.json under {compile_commands_dir} "
            "(configure with -DCMAKE_EXPORT_COMPILE_COMMANDS=ON)")

    wanted = {os.path.abspath(p) for p in paths}
    wanted_dirs = {p for p in wanted if os.path.isdir(p)}

    def in_scope(fname):
        if not fname:
            return False
        f = os.path.abspath(fname)
        return f in wanted or any(f.startswith(d + os.sep) for d in wanted_dirs)

    seen_tus = set()
    for cmd in cdb.getAllCompileCommands():
        src = os.path.join(cmd.directory, cmd.filename) \
            if not os.path.isabs(cmd.filename) else cmd.filename
        src = os.path.normpath(src)
        if src in seen_tus:
            continue
        seen_tus.add(src)
        cargs = [a for a in list(cmd.arguments)[1:]
                 if a not in ("-c", "-o", cmd.filename) and not a.endswith(".o")]
        try:
            tu = index.parse(src, args=cargs)
        except ci.TranslationUnitLoadError:
            continue
        _clang_collect(tu, prog, in_scope, ci)
    return prog


def build_program_clang_single(path, include_dirs) -> Program:
    """Parses one standalone TU (fixture self-test mode)."""
    import clang.cindex as ci

    prog = Program()
    index = ci.Index.create()
    args = ["-std=c++20", "-x", "c++"]
    for d in include_dirs:
        args += ["-I", d]
    tu = index.parse(path, args=args)
    target = os.path.abspath(path)

    def in_scope(fname):
        return fname and os.path.abspath(fname) == target

    _clang_collect(tu, prog, in_scope, ci)
    # Field fallback from the raw text scan so member ids agree between
    # frontends even where libclang skips a field.
    text = _strip_comments(open(path, encoding="utf-8",
                                errors="replace").read())
    _harvest_fields(text, os.path.relpath(path, REPO), prog)
    return prog


# --------------------------------------------------------------------------
# Analysis 1: untrusted-size allocation
# --------------------------------------------------------------------------

class SourceAtom(tuple):
    """(desc, file, line) — a concrete taint origin."""
    __slots__ = ()

    def __new__(cls, desc, file, line):
        return super().__new__(cls, (desc, file, line))


class ParamAtom(tuple):
    """(param_index,) — symbolic taint of the enclosing function's param."""
    __slots__ = ()

    def __new__(cls, i):
        return super().__new__(cls, (i,))


@dataclass
class AllocPath:
    alloc: str                      # e.g. "alloc:reserve"
    alloc_file: str = ""
    alloc_line: int = 0
    chain: tuple = ()               # ((func_qname, file, line), ...)


@dataclass
class Summary:
    returns_param: set = field(default_factory=set)
    returns_sources: set = field(default_factory=set)
    guards: set = field(default_factory=set)         # param indices
    guards_all: bool = False
    alloc_params: dict = field(default_factory=dict)  # idx -> [AllocPath]


@dataclass
class Finding:
    kind: str          # alloc | growth | growth-unenforced
    key: str
    file: str = ""
    line: int = 0
    detail: list = field(default_factory=list)


def _literal_arg(arg: Arg) -> bool:
    return not arg.refs and not arg.calls


class Analyzer:
    def __init__(self, prog: Program, capacity: dict | None = None,
                 verbose=False):
        self.prog = prog
        self.capacity = capacity or {}
        self.verbose = verbose
        self.sum: dict[str, Summary] = {}
        self.findings: list[Finding] = []
        for q, f in prog.funcs.items():
            s = Summary()
            if ANNOT_GUARD in f.annots:
                s.guards_all = True
            for i, p in enumerate(f.params):
                if ANNOT_GUARD in p.annots:
                    s.guards.add(i)
            self.sum[q] = s

    # -- resolution --------------------------------------------------------

    def resolve(self, cs: CallSite, enclosing: Func):
        name = cs.name
        if name in SIZE_FILTER_METHODS:
            return "FILTER"
        cands = self.prog.by_name.get(name, [])
        if cs.explicit and len(cs.chain) >= 2:
            suffix = "::".join(cs.chain)
            matches = [q for q in cands
                       if q == suffix or q.endswith("::" + suffix)]
            if matches:
                return self.prog.funcs[matches[0]]
        if cs.recv is not None:
            rtype = self._recv_type(cs, enclosing)
            if rtype:
                matches = [q for q in cands
                           if q.endswith(f"::{rtype}::{name}")]
                if matches:
                    return self.prog.funcs[matches[0]]
                return None  # known type, no such method: external call
            if name in STD_CONTAINER_METHODS:
                return None  # untyped receiver + std method name: opaque
        cands = [q for q in cands if self._viable(cs, q)]
        if len(cands) == 1:
            return self.prog.funcs[cands[0]]
        if len(cands) > 1:
            sums = [self.sum[q] for q in cands]
            f0 = self.prog.funcs[cands[0]]
            sig0 = (f0.annots, tuple(sorted(sums[0].alloc_params)),
                    tuple(sorted(sums[0].guards)))
            same = all((self.prog.funcs[q].annots,
                        tuple(sorted(self.sum[q].alloc_params)),
                        tuple(sorted(self.sum[q].guards))) == sig0
                       for q in cands[1:])
            if same:
                return f0
        return None

    def _viable(self, cs: CallSite, q: str) -> bool:
        cand = self.prog.funcs[q]
        if len(cs.args) > len(cand.params):
            return False
        if cs.recv is not None and cand.cls is None:
            return False
        return True

    def _recv_type(self, cs: CallSite, enclosing: Func):
        if not cs.recv_path:
            return None
        t = enclosing.local_types.get(cs.recv_path[0])
        if t is None and enclosing.cls:
            t = self.prog.fields.get(enclosing.cls, {}).get(cs.recv_path[0])
        for fieldname in cs.recv_path[1:]:
            if t is None:
                return None
            t = self.prog.fields.get(t, {}).get(fieldname)
        return t

    def _opaque(self, callee: Func) -> bool:
        return (not callee.has_body and not callee.annots
                and not any(p.annots for p in callee.params)
                and not self.sum[callee.qname].alloc_params
                and not self.sum[callee.qname].guards)

    @staticmethod
    def _all_calls(st: Stmt):
        out = []

        def rec(calls):
            for c in calls:
                out.append(c)
                for a in c.args:
                    rec(a.calls)
        rec(st.calls)
        return out

    # -- implicit allocation-size positions --------------------------------

    def _implicit_allocs(self, cs: CallSite):
        """Yields (arg_index, desc) for allocation-sized arguments of cs."""
        name = cs.name
        if name in RECV_ALLOC_METHODS and cs.recv is not None and cs.args:
            yield 0, f"alloc:{name}"
            return
        if name == "assign" and cs.recv is not None and len(cs.args) == 2 \
                and _literal_arg(cs.args[1]):
            # count form `assign(n, fill)`; the iterator form has a
            # non-literal second argument and is input-bounded.
            yield 0, "alloc:assign"
            return
        if name == "make_unique" and cs.array_form and len(cs.args) == 1:
            yield 0, "alloc:make_unique"
            return
        if len(cs.chain) >= 2 and cs.chain[-1] == cs.chain[-2] \
                and name in CTOR_ALLOC_TYPES and len(cs.args) == 2 \
                and _literal_arg(cs.args[1]):
            yield 0, f"alloc:{name}-ctor"

    # -- phase 1: derived guards -------------------------------------------

    def compute_guards(self):
        changed = True
        guard = 0
        while changed and guard < 50:
            changed = False
            guard += 1
            for q, f in self.prog.funcs.items():
                if not f.has_body:
                    continue
                s = self.sum[q]
                pidx = {p.name: i for i, p in enumerate(f.params) if p.name}
                for st in f.stmts:
                    for cs in self._all_calls(st):
                        callee = self.resolve(cs, f)
                        if callee in (None, "FILTER"):
                            continue
                        csum = self.sum[callee.qname]
                        if cs.recv in pidx and csum.guards_all:
                            if pidx[cs.recv] not in s.guards:
                                s.guards.add(pidx[cs.recv])
                                changed = True
                        for ai, arg in enumerate(cs.args):
                            names = set(arg.refs)
                            if len(names) != 1 or arg.calls and \
                                    any(c.name not in ("move",) for c in arg.calls):
                                continue
                            nm = next(iter(names))
                            if nm not in pidx:
                                continue
                            if csum.guards_all or ai in csum.guards:
                                if pidx[nm] not in s.guards:
                                    s.guards.add(pidx[nm])
                                    changed = True

    # -- phase 2: fixpoint -------------------------------------------------

    def run(self):
        self.compute_guards()
        changed = True
        guard = 0
        while changed and guard < 50:
            changed = False
            guard += 1
            self.findings = []
            for q, f in self.prog.funcs.items():
                if not f.has_body:
                    continue
                if self._analyze_function(f):
                    changed = True
        self.run_growth()
        self._dedupe()

    def _dedupe(self):
        seen = set()
        uniq = []
        for fd in self.findings:
            if fd.key not in seen:
                seen.add(fd.key)
                uniq.append(fd)
        self.findings = uniq

    def _analyze_function(self, f: Func) -> bool:
        s = self.sum[f.qname]
        state: dict[str, set] = {}
        for i, p in enumerate(f.params):
            atoms = {ParamAtom(i)}
            if ANNOT_UNTRUSTED in p.annots:
                atoms.add(SourceAtom(f"{f.qname} (untrusted param"
                                     f" '{p.name or i}')", f.file, f.line))
            if p.name:
                state[p.name] = atoms
        grew = False

        def eval_arg(arg: Arg) -> set:
            atoms = set()
            for r in arg.refs:
                atoms |= state.get(r, set())
            for c in arg.calls:
                atoms |= call_atoms(c)
            return atoms

        def call_atoms(cs: CallSite) -> set:
            callee = self.resolve(cs, f)
            if callee == "FILTER":
                return set()
            arg_atoms = [eval_arg(a) for a in cs.args]
            recv_atoms = state.get(cs.recv, set()) if cs.recv else set()
            if (callee is None or self._opaque(callee)) and cs.recv \
                    and cs.name in ("find", "at", "count"):
                return set(recv_atoms)
            if callee is None or self._opaque(callee):
                out = set(recv_atoms)
                for a in arg_atoms:
                    out |= a
                return out
            csum = self.sum[callee.qname]
            if ANNOT_UNTRUSTED in callee.annots:
                return {SourceAtom(callee.qname, f.file, cs.line)}
            if csum.guards_all:
                return set()  # a guard's result is a validated size
            out = set(recv_atoms)
            if len(callee.qname.split("::")) >= 2 and \
                    callee.qname.split("::")[-1] == callee.qname.split("::")[-2]:
                for a in arg_atoms:
                    out |= a
            for i in csum.returns_param:
                if i < len(arg_atoms):
                    out |= arg_atoms[i]
            for src in csum.returns_sources:
                out.add(SourceAtom(src[0], f.file, cs.line))
            return out

        def apply_guards(cs: CallSite):
            callee = self.resolve(cs, f)
            if callee in (None, "FILTER"):
                return
            csum = self.sum[callee.qname]
            if csum.guards_all:
                if cs.recv:
                    state[cs.recv] = set()
                for a in cs.args:
                    for r in a.refs:
                        state[r] = set()
            else:
                for i in csum.guards:
                    if i < len(cs.args):
                        for r in cs.args[i].refs:
                            state[r] = set()

        def record(atoms, path: AllocPath, line):
            nonlocal grew
            hop = (f.qname, f.file, line)
            for atom in atoms:
                if isinstance(atom, SourceAtom):
                    chain = (hop,) + path.chain
                    self.findings.append(Finding(
                        kind="alloc",
                        key=f"{f.qname} | {atom[0]} -> {path.alloc}",
                        file=f.file, line=line,
                        detail=[f"  source: {atom[0]}",
                                f"          reaches taint at {atom[1]}:{atom[2]}",
                                f"  alloc:  {path.alloc} at "
                                f"{path.alloc_file}:{path.alloc_line}",
                                "  path:"]
                        + [f"    {fn} at {fl}:{ln}" for fn, fl, ln in chain]
                        + ["  fix: validate the size with a GLOBE_LENGTH_GUARD "
                           "clamp (util::checked_count) before allocating"]))
                elif isinstance(atom, ParamAtom):
                    j = atom[0]
                    lst = self.sum[f.qname].alloc_params.setdefault(j, [])
                    np = AllocPath(path.alloc, path.alloc_file,
                                   path.alloc_line, (hop,) + path.chain)
                    if len(np.chain) <= MAX_CHAIN and \
                            not any(e.alloc == np.alloc and e.chain == np.chain
                                    for e in lst):
                        lst.append(np)
                        grew = True

        def check_allocs(cs: CallSite):
            for i, desc in self._implicit_allocs(cs):
                atoms = eval_arg(cs.args[i])
                if atoms:
                    record(atoms, AllocPath(desc, f.file, cs.line), cs.line)
            callee = self.resolve(cs, f)
            if callee in (None, "FILTER"):
                return
            csum = self.sum[callee.qname]
            for i, paths in csum.alloc_params.items():
                if i >= len(cs.args):
                    continue
                if csum.guards_all or i in csum.guards:
                    continue  # the callee validates this size itself
                atoms = eval_arg(cs.args[i])
                if not atoms:
                    continue
                for path in paths:
                    if len(path.chain) >= MAX_CHAIN:
                        continue
                    record(atoms, path, cs.line)

        def check_return(st: Stmt):
            nonlocal grew
            s_here = self.sum[f.qname]
            if s_here.guards_all:
                return  # a guard's return is a validated size by contract
            atoms = set()
            for r in st.refs:
                atoms |= state.get(r, set())
            for c in st.calls:
                atoms |= call_atoms(c)
            for atom in atoms:
                if isinstance(atom, ParamAtom):
                    if atom[0] not in s_here.returns_param:
                        s_here.returns_param.add(atom[0])
                        grew = True
                elif isinstance(atom, SourceAtom):
                    if atom not in s_here.returns_sources \
                            and len(s_here.returns_sources) < 8:
                        s_here.returns_sources.add(atom)
                        grew = True

        if ANNOT_UNTRUSTED in f.annots:
            src = SourceAtom(f.qname, f.file, f.line)
            if src not in s.returns_sources:
                s.returns_sources.add(src)
                grew = True

        # Two passes over the linearized statements: the second starts from
        # the first pass's end state, approximating loop back-edges.
        for _pass in (0, 1):
            for st in f.stmts:
                # Allocation sizes are checked against the PRE-state: a guard
                # cannot bless the very call that smuggles its argument into
                # an allocation (nested guard calls still evaluate clean).
                for cs in self._all_calls(st):
                    check_allocs(cs)
                for cs in self._all_calls(st):
                    apply_guards(cs)
                if st.is_return:
                    check_return(st)
                if st.lhs is not None:
                    atoms = set()
                    for r in st.refs:
                        atoms |= state.get(r, set())
                    for c in st.calls:
                        atoms |= call_atoms(c)
                    if st.lhs_is_member or st.compound:
                        state[st.lhs] = state.get(st.lhs, set()) | atoms
                    else:
                        state[st.lhs] = atoms
                else:
                    for cs in st.calls:
                        callee = self.resolve(cs, f)
                        if cs.recv and (callee is None or
                                        callee != "FILTER" and self._opaque(callee)):
                            extra = set()
                            for a in cs.args:
                                extra |= eval_arg(a)
                            if extra:
                                state[cs.recv] = state.get(cs.recv, set()) | extra
        return grew

    # ----------------------------------------------------------------------
    # Analysis 2: unbounded-growth state
    # ----------------------------------------------------------------------

    def _watched(self, f: Func) -> bool:
        if not f.cls:
            return False
        return subsys_of(f.file) in GROWTH_SUBSYS \
            or bool(LONGLIVED_RE.search(f.cls))

    def growth_events(self):
        """{(cls, member) -> {"id", "info", "sites": [(q, file, line, how)]}}"""
        events = {}

        def note(f, member, line, how):
            info = self.prog.field_info.get(f.cls, {}).get(member)
            if info is None or info["type"] not in CONTAINER_TYPES:
                return
            if member in f.local_types:
                return  # shadowed by a parameter or local
            mid = f"{subsys_of(info['file'])}.{f.cls}.{member}"
            ev = events.setdefault((f.cls, member),
                                   {"id": mid, "info": info, "sites": []})
            ev["sites"].append((f.qname, f.file, line, how))

        for q, f in self.prog.funcs.items():
            if not f.has_body or not self._watched(f):
                continue
            for st in f.stmts:
                for cs in self._all_calls(st):
                    if cs.name in GROWTH_METHODS and cs.recv \
                            and len(cs.recv_path) == 1:
                        note(f, cs.recv, cs.line, cs.name)
                if st.compound and st.lhs and not st.lhs_is_member:
                    note(f, st.lhs, st.line, "+=")
        return events

    def _has_enforcement(self, cls: str, member: str) -> bool:
        for q, f in self.prog.funcs.items():
            if f.cls != cls or not f.has_body:
                continue
            for st in f.stmts:
                for cs in self._all_calls(st):
                    if cs.recv == member and len(cs.recv_path) == 1 \
                            and cs.name in EVIDENCE_METHODS:
                        return True
                if st.lhs == member and not st.lhs_is_member \
                        and not st.compound and st.decl_type is None:
                    return True  # wholesale reset (`ring_ = {}`)
        return False

    def run_growth(self):
        for (cls, member), ev in sorted(self.growth_events().items()):
            mid, info = ev["id"], ev["info"]
            declared = info["bounded"] or mid in self.capacity
            sites = [f"    {q} at {fl}:{ln} ({how})"
                     for q, fl, ln, how in ev["sites"][:6]]
            if not declared:
                self.findings.append(Finding(
                    kind="growth", key=f"{mid} | unbounded-growth",
                    file=info["file"], line=info["line"],
                    detail=[f"  member: {mid} "
                            f"({info['file']}:{info['line']})",
                            "  growth:"] + sites
                    + ["  fix: annotate GLOBE_BOUNDED, enforce a capacity, "
                       "and rank it in tools/capacity_bounds.txt"]))
                continue
            cap = self.capacity.get(mid)
            if cap == 0:
                continue  # configuration-time growth: ceiling is the config
            if not self._has_enforcement(cls, member):
                self.findings.append(Finding(
                    kind="growth-unenforced",
                    key=f"{mid} | bounded-unenforced",
                    file=info["file"], line=info["line"],
                    detail=[f"  member: {mid} "
                            f"({info['file']}:{info['line']}) declares a "
                            "bound but the class never shrinks or "
                            "size-checks it",
                            "  growth:"] + sites
                    + ["  fix: add the eviction/capacity check, or rank the "
                       "member capacity 0 if it only grows during trusted "
                       "configuration"]))


# --------------------------------------------------------------------------
# Registry, baseline, reporting
# --------------------------------------------------------------------------

def load_capacity(path):
    """Lines: `<capacity> <subsys>.<Class>.<member>  # note`.  Capacity 0
    means the member grows only during trusted configuration."""
    caps = {}
    if not os.path.exists(path):
        return caps
    for lineno, raw in enumerate(open(path, encoding="utf-8"), 1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        parts = line.split()
        if len(parts) != 2:
            raise SystemExit(f"{path}:{lineno}: expected "
                             f"`<capacity> <memberid>`, got: {raw.strip()}")
        try:
            cap = int(parts[0])
        except ValueError:
            raise SystemExit(f"{path}:{lineno}: capacity must be an integer")
        if cap < 0:
            raise SystemExit(f"{path}:{lineno}: capacity must be >= 0")
        if parts[1] in caps:
            raise SystemExit(f"{path}:{lineno}: duplicate member {parts[1]}")
        caps[parts[1]] = cap
    return caps


def load_baseline(path):
    """Lines: `<finding key>  # justification` (justification required)."""
    entries = {}
    if not os.path.exists(path):
        return entries
    for lineno, raw in enumerate(open(path, encoding="utf-8"), 1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        if "#" not in line:
            raise SystemExit(
                f"{path}:{lineno}: baseline entry lacks a justification "
                "comment — every suppression must say why")
        key = line.split("#", 1)[0].strip()
        entries[key] = {"line": lineno, "used": False}
    return entries


_HEADLINE = {
    "alloc": "BOUNDS: untrusted size reaches an allocation without a "
             "length guard",
    "growth": "BOUNDS: long-lived container member grows without a "
              "declared bound",
    "growth-unenforced": "BOUNDS: GLOBE_BOUNDED member has no enforced "
                         "capacity check",
}


def render(fd: Finding) -> str:
    lines = [_HEADLINE.get(fd.kind, "BOUNDS: finding")]
    if fd.file:
        lines.append(f"  at {fd.file}:{fd.line}")
    lines.extend(fd.detail)
    lines.append(f"  suppression key: {fd.key}")
    return "\n".join(lines)


# --------------------------------------------------------------------------
# Drivers
# --------------------------------------------------------------------------

def build_program(paths, frontend, cc_dir):
    if frontend in ("clang", "auto"):
        try:
            return build_program_clang(paths, cc_dir), "clang"
        except ImportError:
            if frontend == "clang":
                raise SystemExit(
                    "frontend 'clang' requested but python libclang is not "
                    "importable (pip install libclang); use --frontend lite")
            print("[bounds] libclang unavailable; using lite frontend",
                  file=sys.stderr)
        except RuntimeError as e:
            if frontend == "clang":
                raise SystemExit(f"clang frontend failed: {e}")
            print(f"[bounds] clang frontend failed ({e}); using lite frontend",
                  file=sys.stderr)
    files = []
    for p in paths:
        if os.path.isdir(p):
            files.extend(collect_sources(p))
        else:
            files.append(p)
    return build_program_lite(files), "lite"


def analyze(paths, frontend, cc_dir, capacity, verbose=False):
    prog, used = build_program(paths, frontend, cc_dir)
    an = Analyzer(prog, capacity, verbose=verbose)
    an.run()
    return an, used


def _stats_line(an: Analyzer, used, new, suppressed):
    n_guard = sum(1 for q, f in an.prog.funcs.items()
                  if ANNOT_GUARD in f.annots)
    n_bounded = sum(1 for fields in an.prog.field_info.values()
                    for info in fields.values() if info["bounded"])
    n_growth = len(an.growth_events())
    return (f"[bounds] frontend={used} functions={len(an.prog.funcs)} "
            f"guards={n_guard} bounded_members={n_bounded} "
            f"growth_members={n_growth} findings={len(an.findings)} "
            f"suppressed={suppressed} new={len(new)}")


def run_tree(args):
    paths = args.paths or [os.path.join(REPO, "src")]
    capacity = load_capacity(args.capacity)
    an, used = analyze(paths, args.frontend, args.compile_commands, capacity,
                       args.verbose)
    baseline = load_baseline(args.baseline)
    new = []
    for fd in an.findings:
        ent = baseline.get(fd.key)
        if ent is not None:
            ent["used"] = True
        else:
            new.append(fd)
    rc = 0
    for fd in new:
        print(render(fd))
        print()
        rc = 1
    stale = [k for k, e in baseline.items() if not e["used"]]
    for k in stale:
        print(f"STALE BASELINE: `{k}` no longer matches any finding — "
              f"remove it from {os.path.relpath(args.baseline, REPO)}")
        if args.strict_baseline:
            rc = 1
    print(_stats_line(an, used, new, len(an.findings) - len(new)))
    if rc == 0:
        print("[bounds] OK: every untrusted size passes a length guard and "
              "every long-lived container has a declared, enforced bound "
              "(modulo justified baseline)")
    return rc


def run_list(args):
    paths = args.paths or [os.path.join(REPO, "src")]
    capacity = load_capacity(args.capacity)
    prog, used = build_program(paths, args.frontend, args.compile_commands)
    an = Analyzer(prog, capacity)
    print(f"# GLOBE_LENGTH_GUARD functions ({used} frontend)")
    for q in sorted(prog.funcs):
        f = prog.funcs[q]
        if ANNOT_GUARD in f.annots:
            print(f"{q}  ({f.file}:{f.line})")
    print()
    print("# growth members (long-lived classes)")
    for (cls, member), ev in sorted(an.growth_events().items()):
        info = ev["info"]
        cap = capacity.get(ev["id"], "UNRANKED")
        tag = "GLOBE_BOUNDED" if info["bounded"] else "unannotated"
        print(f"{ev['id']}  type={info['type']} cap={cap} {tag}  "
              f"({info['file']}:{info['line']})")
        for q, fl, ln, how in ev["sites"]:
            print(f"    grows in {q} at {fl}:{ln} ({how})")
    return 0


# --------------------------------------------------------------------------
# Self-test (fixture corpus)
# --------------------------------------------------------------------------

EXPECT_RE = re.compile(
    r"//\s*BOUNDS-EXPECT:\s*(clean|flag\s+kind=(\S+)(?:\s+detail=(\S+))?)")
CAPACITY_RE = re.compile(r"//\s*BOUNDS-CAPACITY:\s*(\d+)\s+(\S+)")


def run_self_test(args):
    fixture_dir = os.path.join(REPO, "tests", "bounds", "fixtures")
    if not os.path.isdir(fixture_dir):
        print(f"no fixture directory at {fixture_dir}", file=sys.stderr)
        return 2
    use_clang = args.frontend == "clang"
    if use_clang:
        try:
            import clang.cindex  # noqa: F401
        except ImportError:
            print("frontend 'clang' requested for self-test but libclang "
                  "is unavailable", file=sys.stderr)
            return 2
    fixtures = sorted(f for f in os.listdir(fixture_dir) if f.endswith(".cpp"))
    failures = []
    for fx in fixtures:
        path = os.path.join(fixture_dir, fx)
        raw = open(path, encoding="utf-8").read()
        expects = EXPECT_RE.findall(raw)
        if not expects:
            failures.append(f"{fx}: no BOUNDS-EXPECT comment")
            continue
        capacity = {}
        for cap, mid in CAPACITY_RE.findall(raw):
            capacity[mid] = int(cap)
        if use_clang:
            try:
                prog = build_program_clang_single(path, [fixture_dir])
            except Exception as e:  # noqa: BLE001 - report as test failure
                failures.append(f"{fx}: clang parse failed: {e}")
                continue
        else:
            prog = build_program_lite([path])
        an = Analyzer(prog, capacity)
        an.run()
        want_clean = any(e[0] == "clean" for e in expects)
        flags = [e for e in expects if e[0].startswith("flag")]
        if want_clean and an.findings:
            failures.append(
                f"{fx}: expected clean, got {len(an.findings)} finding(s):\n"
                + "\n".join("    " + f.key for f in an.findings))
            continue
        if not want_clean:
            unmatched = []
            for _e, kind, detail in flags:
                ok = any(fd.kind == kind and (not detail or detail in fd.key)
                         for fd in an.findings)
                if not ok:
                    unmatched.append(f"kind={kind} detail={detail}")
            extra = [fd for fd in an.findings
                     if not any(fd.kind == kind and
                                (not detail or detail in fd.key)
                                for _e, kind, detail in flags)]
            if unmatched:
                failures.append(
                    f"{fx}: expected finding not produced: "
                    f"{'; '.join(unmatched)}\n    got: "
                    + ("; ".join(fd.key for fd in an.findings) or "nothing"))
            if extra:
                failures.append(
                    f"{fx}: unexpected finding(s): "
                    + "; ".join(fd.key for fd in extra))
    frontend = "clang" if use_clang else "lite"
    print(f"[bounds] self-test ({frontend}): {len(fixtures)} fixtures, "
          f"{len(failures)} failure(s)")
    for msg in failures:
        print("  FAIL " + msg)
    if len(fixtures) < 15:
        print(f"  FAIL corpus too small: {len(fixtures)} fixtures (< 15)")
        return 1
    return 1 if failures else 0


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("paths", nargs="*", help="files/dirs (default: src/)")
    ap.add_argument("--frontend", choices=("auto", "clang", "lite"),
                    default="auto")
    ap.add_argument("--compile-commands", default=os.path.join(REPO, "build"),
                    help="directory containing compile_commands.json")
    ap.add_argument("--capacity",
                    default=os.path.join(REPO, "tools", "capacity_bounds.txt"))
    ap.add_argument("--baseline",
                    default=os.path.join(REPO, "tools", "bounds_baseline.txt"))
    ap.add_argument("--strict-baseline", action="store_true",
                    help="stale baseline entries are errors")
    ap.add_argument("--self-test", action="store_true")
    ap.add_argument("--list", action="store_true",
                    help="dump guards, bounded members, growth sites")
    ap.add_argument("--verbose", action="store_true")
    args = ap.parse_args()
    if args.self_test:
        if args.frontend == "auto":
            args.frontend = "lite"
        sys.exit(run_self_test(args))
    if args.list:
        sys.exit(run_list(args))
    sys.exit(run_tree(args))


if __name__ == "__main__":
    main()
